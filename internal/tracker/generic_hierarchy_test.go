package tracker

import (
	"math/rand"
	"testing"

	"vinestalk/internal/cgcast"
	"vinestalk/internal/evader"
	"vinestalk/internal/geo"
	"vinestalk/internal/geocast"
	"vinestalk/internal/hier"
	"vinestalk/internal/metrics"
	"vinestalk/internal/sim"
	"vinestalk/internal/vbcast"
	"vinestalk/internal/vsa"
)

// The paper generalizes STALK's cluster definitions so that *any*
// hierarchy satisfying §II-B's structural requirements can carry the
// tracking path (the grid is just the running example). These tests run
// the unmodified tracker over a landmark decomposition — an irregular,
// non-grid clustering — and over a 4-neighbor tiling's landmark
// hierarchy, verifying that moves and finds work and the structure stays
// sound.

func newHierFixture(t *testing.T, tl geo.Tiling, h *hier.Hierarchy, start geo.RegionID, cgOpts ...cgcast.Option) *fixture {
	t.Helper()
	f := &fixture{t: t, k: sim.New(42)}
	if g, ok := tl.(*geo.GridTiling); ok {
		f.tiling = g
	}
	f.h = h
	f.layer = vsa.NewLayer(f.k, tl, vsa.WithAlwaysAlive())
	f.ledger = metrics.NewLedger()
	vb := vbcast.New(f.k, f.layer, delta, lagE, f.ledger)
	gc := geocast.New(f.k, f.layer, h.Graph(), vb, f.ledger)
	geom := hier.MeasureGeometry(h)
	cg, err := cgcast.New(h, f.layer, gc, vb, geom, f.ledger, cgOpts...)
	if err != nil {
		t.Fatal(err)
	}
	net, err := New(cg, geom,
		WithFoundCallback(func(r FindResult) { f.founds = append(f.founds, r) }))
	if err != nil {
		t.Fatal(err)
	}
	f.net = net
	if err := net.AddStationaryClients(); err != nil {
		t.Fatal(err)
	}
	f.layer.StartAllAlive()
	ev, err := evader.New(tl, start, net.Sink())
	if err != nil {
		t.Fatal(err)
	}
	f.ev = ev
	net.AttachEvader(ev.Region)
	return f
}

func TestTrackerOverLandmarkHierarchy(t *testing.T) {
	tl := geo.MustGridTiling(9, 9)
	h, err := hier.NewLandmark(tl, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := newHierFixture(t, tl, h, 40) // center-ish
	f.settle()
	f.assertTracksEvader()

	rng := rand.New(rand.NewSource(19))
	for step := 0; step < 15; step++ {
		nbrs := tl.Neighbors(f.ev.Region())
		if err := f.ev.MoveTo(nbrs[rng.Intn(len(nbrs))]); err != nil {
			t.Fatal(err)
		}
		f.settle()
		f.assertTracksEvader()
	}
	// Finds from several origins.
	for _, origin := range []geo.RegionID{0, 8, 72, 80, 44} {
		id, err := f.net.Find(origin)
		if err != nil {
			t.Fatal(err)
		}
		f.settle()
		if !f.net.FindDone(id) {
			t.Fatalf("find from %v incomplete on landmark hierarchy", origin)
		}
	}
	for _, r := range f.founds {
		if r.FoundAt != f.ev.Region() {
			t.Errorf("find %d found at %v, want %v", r.ID, r.FoundAt, f.ev.Region())
		}
	}
}

func TestTrackerOverFourNeighborLandmarkHierarchy(t *testing.T) {
	// Even where square-block grids violate proximity, the tracker remains
	// *correct* over a structurally-valid hierarchy — only the locality
	// constants degrade, exactly as the analysis predicts.
	tl, err := geo.NewGridTiling4(7, 7)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hier.NewLandmark(tl, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := newHierFixture(t, tl, h, 24)
	f.settle()
	f.assertTracksEvader()
	for _, move := range []geo.RegionID{25, 26, 33} {
		if err := f.ev.MoveTo(move); err != nil {
			t.Fatal(err)
		}
		f.settle()
		f.assertTracksEvader()
	}
	id, err := f.net.Find(0)
	if err != nil {
		t.Fatal(err)
	}
	f.settle()
	if !f.net.FindDone(id) {
		t.Fatal("find incomplete on 4-neighbor landmark hierarchy")
	}
}

func TestTrackerOverIrregularThinnedTiling(t *testing.T) {
	// The fully general §II-A deployment space: an 8x8 grid thinned to a
	// sparse irregular graph (spanning structure + 40% of other edges),
	// clustered by landmark decomposition. The unmodified tracker must
	// track and answer finds.
	base := geo.MustGridTiling(8, 8)
	thin, err := geo.Thin(base, 0.4, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	h, err := hier.NewLandmark(thin, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := newHierFixture(t, thin, h, 27)
	f.settle()
	f.assertPathReachesEvaderGeneric(t, thin)

	rng := rand.New(rand.NewSource(14))
	for step := 0; step < 12; step++ {
		nbrs := thin.Neighbors(f.ev.Region())
		if err := f.ev.MoveTo(nbrs[rng.Intn(len(nbrs))]); err != nil {
			t.Fatal(err)
		}
		f.settle()
		f.assertPathReachesEvaderGeneric(t, thin)
	}
	for _, origin := range []geo.RegionID{0, 63, 31} {
		id, err := f.net.Find(origin)
		if err != nil {
			t.Fatal(err)
		}
		f.settle()
		if !f.net.FindDone(id) {
			t.Fatalf("find from %v incomplete on irregular tiling", origin)
		}
	}
	for _, r := range f.founds {
		if r.FoundAt != f.ev.Region() {
			t.Errorf("find %d found at %v, want %v", r.ID, r.FoundAt, f.ev.Region())
		}
	}
}

// assertPathReachesEvaderGeneric walks the c pointers on any tiling (the
// fixture's grid-based helper assumes *geo.GridTiling).
func (f *fixture) assertPathReachesEvaderGeneric(t *testing.T, tl geo.Tiling) {
	t.Helper()
	cur := f.h.Root()
	seen := make(map[hier.ClusterID]bool)
	for {
		if seen[cur] {
			t.Fatalf("path cycles at %v", cur)
		}
		seen[cur] = true
		c, _, _, _ := f.net.Process(cur).Pointers()
		if c == cur {
			if want := f.h.Cluster(f.ev.Region(), 0); cur != want {
				t.Fatalf("path ends at %v, evader at %v", cur, want)
			}
			return
		}
		if !c.Valid() {
			t.Fatalf("path dead-ends at %v", cur)
		}
		cur = c
	}
}
