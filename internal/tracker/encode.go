package tracker

import (
	"encoding/binary"
	"fmt"
	"sort"

	"vinestalk/internal/geo"
	"vinestalk/internal/hier"
	"vinestalk/internal/sim"
)

// Region-state codec for the emulation host: the complete Fig. 2 state of
// every process a region hosts, in a canonical byte form. Canonical means
// two replicas that processed the same input sequence encode byte-identical
// values — levels ascend, objects ascend, pending finds keep arrival order
// (part of the machine state), and timer deadlines are the recorded
// absolute times.
//
// Layout (big-endian):
//
//	u16 version | u16 numLevels
//	per level:  u16 level | u32 numObjs
//	per object: i32 obj | i32 c | i32 p | i32 nbrptup | i32 nbrptdown
//	            i64 timer | i64 nbrTimeout | i64 lease | i64 nbrLease
//	            u32 numPending | per pending: i64 findID | i32 origin

const regionStateVersion = 1

// EncodeRegion implements vsa.Automaton.
func (a *Automaton) EncodeRegion(u geo.RegionID) []byte {
	d, ok := a.regions[u]
	if !ok {
		return nil
	}
	var buf []byte
	buf = binary.BigEndian.AppendUint16(buf, regionStateVersion)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(d.levels)))
	for _, level := range d.levels {
		pr := d.byLevel[level]
		buf = binary.BigEndian.AppendUint16(buf, uint16(level))
		objs := make([]ObjectID, 0, len(pr.objs))
		for obj := range pr.objs {
			objs = append(objs, obj)
		}
		sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(objs)))
		for _, obj := range objs {
			st := pr.objs[obj]
			buf = binary.BigEndian.AppendUint32(buf, uint32(obj))
			buf = binary.BigEndian.AppendUint32(buf, uint32(st.c))
			buf = binary.BigEndian.AppendUint32(buf, uint32(st.p))
			buf = binary.BigEndian.AppendUint32(buf, uint32(st.nbrptup))
			buf = binary.BigEndian.AppendUint32(buf, uint32(st.nbrptdown))
			buf = binary.BigEndian.AppendUint64(buf, uint64(st.timer.at))
			buf = binary.BigEndian.AppendUint64(buf, uint64(st.nbrTimeout.at))
			buf = binary.BigEndian.AppendUint64(buf, uint64(st.lease.at))
			buf = binary.BigEndian.AppendUint64(buf, uint64(st.nbrLease.at))
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(st.pending)))
			for _, p := range st.pending {
				buf = binary.BigEndian.AppendUint64(buf, uint64(p.ID))
				buf = binary.BigEndian.AppendUint32(buf, uint32(p.Origin))
			}
		}
	}
	return buf
}

// encodeInitialRegion returns the canonical encoding of region u in its
// initial state (the emul.Program.Init value).
func (a *Automaton) encodeInitialRegion(u geo.RegionID) []byte {
	d, ok := a.regions[u]
	if !ok {
		return nil
	}
	var buf []byte
	buf = binary.BigEndian.AppendUint16(buf, regionStateVersion)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(d.levels)))
	for _, level := range d.levels {
		buf = binary.BigEndian.AppendUint16(buf, uint16(level))
		buf = binary.BigEndian.AppendUint32(buf, 0)
	}
	return buf
}

// decoder is a bounds-checked big-endian cursor.
type decoder struct {
	buf []byte
	off int
	err error
}

func (r *decoder) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *decoder) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *decoder) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *decoder) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("tracker: truncated region state at offset %d", r.off)
	}
}

// remaining reports how many undecoded bytes are left.
func (r *decoder) remaining() int { return len(r.buf) - r.off }

// Minimum encoded sizes, used to sanity-bound length-prefixed counts
// before allocating: a count that could not possibly be satisfied by the
// remaining bytes is rejected up front, so a crafted frame cannot force a
// huge allocation.
const (
	encObjMinSize  = 5*4 + 4*8 + 4 // pointers + timers + pending count
	encPendingSize = 8 + 4         // findID + origin
)

// decodeTimer reads one timer deadline, rejecting negative values: the
// encoder only ever writes absolute times ≥ 0 (or sim.Forever), so a
// negative deadline marks a corrupted or hostile frame.
func (r *decoder) decodeTimer() sim.Time {
	at := sim.Time(r.u64())
	if r.err == nil && at < 0 {
		r.err = fmt.Errorf("tracker: negative timer deadline %d at offset %d", at, r.off)
	}
	return at
}

// DecodeRegion implements vsa.Automaton: it replaces region u's machine
// state with a previously encoded value. Host timers are deliberately not
// touched — the decoded deadlines are authoritative and host wakeups are
// validated against them, so a replica adopting a checkpoint needs no
// timer reconciliation.
//
// The input is untrusted (a networked host receives checkpoints over the
// wire): length-prefixed counts are bounded against the remaining bytes
// before any allocation, canonical form is enforced (levels in host order,
// object ids strictly ascending, deadlines non-negative), and nothing is
// committed until the whole frame parses — so every accepted frame is one
// EncodeRegion could have produced, byte for byte.
func (a *Automaton) DecodeRegion(u geo.RegionID, state []byte) error {
	d, ok := a.regions[u]
	if !ok {
		if len(state) == 0 {
			return nil
		}
		return fmt.Errorf("tracker: region %v hosts no processes", u)
	}
	r := &decoder{buf: state}
	if v := r.u16(); r.err == nil && v != regionStateVersion {
		return fmt.Errorf("tracker: region state version %d, want %d", v, regionStateVersion)
	}
	numLevels := int(r.u16())
	if r.err == nil && numLevels != len(d.levels) {
		return fmt.Errorf("tracker: region %v state has %d levels, host has %d", u, numLevels, len(d.levels))
	}
	type decodedProc struct {
		pr   *Process
		objs map[ObjectID]*objState
	}
	decoded := make([]decodedProc, 0, numLevels)
	for i := 0; i < numLevels && r.err == nil; i++ {
		level := int(r.u16())
		if r.err == nil && level != d.levels[i] {
			return fmt.Errorf("tracker: region %v state level %d at index %d, want canonical order %v", u, level, i, d.levels)
		}
		pr := d.byLevel[level]
		if pr == nil {
			return fmt.Errorf("tracker: region %v state names level %d, which it does not host", u, level)
		}
		numObjs := int(r.u32())
		if r.err == nil && numObjs > r.remaining()/encObjMinSize {
			return fmt.Errorf("tracker: region %v state claims %d objects with %d bytes left", u, numObjs, r.remaining())
		}
		objs := make(map[ObjectID]*objState, numObjs)
		prevObj := ObjectID(0)
		for j := 0; j < numObjs && r.err == nil; j++ {
			obj := ObjectID(r.u32())
			if r.err == nil && j > 0 && obj <= prevObj {
				return fmt.Errorf("tracker: region %v state object %d after %d, want strictly ascending", u, obj, prevObj)
			}
			prevObj = obj
			st := &objState{
				pr:        pr,
				obj:       obj,
				c:         hier.ClusterID(r.u32()),
				p:         hier.ClusterID(r.u32()),
				nbrptup:   hier.ClusterID(r.u32()),
				nbrptdown: hier.ClusterID(r.u32()),
			}
			st.timer = timerSlot{st: st, kind: timerGrowShrink, at: r.decodeTimer()}
			st.nbrTimeout = timerSlot{st: st, kind: timerNbrTimeout, at: r.decodeTimer()}
			st.lease = timerSlot{st: st, kind: timerLease, at: r.decodeTimer()}
			st.nbrLease = timerSlot{st: st, kind: timerNbrLease, at: r.decodeTimer()}
			numPending := int(r.u32())
			if r.err == nil && numPending > r.remaining()/encPendingSize {
				return fmt.Errorf("tracker: region %v state claims %d pending finds with %d bytes left", u, numPending, r.remaining())
			}
			if numPending > 0 {
				st.pending = make([]FindPayload, 0, numPending)
			}
			for p := 0; p < numPending && r.err == nil; p++ {
				id := FindID(r.u64())
				origin := geo.RegionID(r.u32())
				st.pending = append(st.pending, FindPayload{ID: id, Origin: origin})
			}
			objs[obj] = st
		}
		decoded = append(decoded, decodedProc{pr: pr, objs: objs})
	}
	if r.err != nil {
		return r.err
	}
	if r.off != len(state) {
		return fmt.Errorf("tracker: %d trailing bytes in region %v state", len(state)-r.off, u)
	}
	// Commit only after a fully successful parse.
	for _, dp := range decoded {
		dp.pr.objs = dp.objs
	}
	return nil
}
