package tracker

import (
	"encoding/binary"
	"fmt"

	"vinestalk/internal/geo"
	"vinestalk/internal/hier"
	"vinestalk/internal/sim"
)

// Region-state codec for the emulation host: the complete Fig. 2 state of
// every process a region hosts, in a canonical byte form. Canonical means
// two replicas that processed the same input sequence encode byte-identical
// values — levels ascend, objects ascend, pending finds keep arrival order
// (part of the machine state), and timer deadlines are the recorded
// absolute times.
//
// Version 2 is the compact object-major layout: the per-process object
// table is already sorted, so encoding is a single linear pass, and the
// common case (an on-path object with no armed timers and no pending
// finds) costs 21 bytes instead of version 1's fixed 56 — unarmed timer
// slots and the empty pending set are elided behind a flags byte.
//
// Layout (big-endian):
//
//	u16 version(=2) | u16 numLevels
//	per level:  u16 level | u32 numObjs
//	per object: i32 obj | i32 c | i32 p | i32 nbrptup | i32 nbrptdown
//	            u8 flags    (bit 0..3: timer/nbrTimeout/lease/nbrLease
//	                         armed; bit 4: pending finds follow)
//	            per armed slot, in bit order: i64 deadline
//	            if bit 4:   u32 numPending (≥1) | per pending: i64 findID
//	                        | i32 origin
//
// Version 1 (fixed-width: all four i64 deadlines plus a u32 pending count
// per object) is still accepted by DecodeRegion, so checkpoints taken
// before the upgrade replay; re-encoding always produces version 2.

const (
	regionStateVersion   = 2
	regionStateVersionV1 = 1
)

// encFlag bits of the version-2 per-object flags byte.
const (
	encFlagTimer      = 1 << 0
	encFlagNbrTimeout = 1 << 1
	encFlagLease      = 1 << 2
	encFlagNbrLease   = 1 << 3
	encFlagPending    = 1 << 4
	encFlagReserved   = 0xFF &^ (encFlagTimer | encFlagNbrTimeout | encFlagLease | encFlagNbrLease | encFlagPending)
)

// EncodeRegion implements vsa.Automaton.
func (a *Automaton) EncodeRegion(u geo.RegionID) []byte {
	d, ok := a.regions[u]
	if !ok {
		return nil
	}
	var buf []byte
	buf = binary.BigEndian.AppendUint16(buf, regionStateVersion)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(d.levels)))
	for _, level := range d.levels {
		pr := d.byLevel[level]
		buf = binary.BigEndian.AppendUint16(buf, uint16(level))
		buf = binary.BigEndian.AppendUint32(buf, uint32(pr.objs.len()))
		// The table is sorted by object id: one pass, no sort, no map range.
		for _, st := range pr.objs.s {
			buf = binary.BigEndian.AppendUint32(buf, uint32(st.obj))
			buf = binary.BigEndian.AppendUint32(buf, uint32(st.c))
			buf = binary.BigEndian.AppendUint32(buf, uint32(st.p))
			buf = binary.BigEndian.AppendUint32(buf, uint32(st.nbrptup))
			buf = binary.BigEndian.AppendUint32(buf, uint32(st.nbrptdown))
			var flags byte
			slots := [4]sim.Time{st.timer.at, st.nbrTimeout.at, st.lease.at, st.nbrLease.at}
			for i, at := range slots {
				if at != sim.Forever {
					flags |= 1 << i
				}
			}
			if len(st.pending) > 0 {
				flags |= encFlagPending
			}
			buf = append(buf, flags)
			for _, at := range slots {
				if at != sim.Forever {
					buf = binary.BigEndian.AppendUint64(buf, uint64(at))
				}
			}
			if len(st.pending) > 0 {
				buf = binary.BigEndian.AppendUint32(buf, uint32(len(st.pending)))
				for _, p := range st.pending {
					buf = binary.BigEndian.AppendUint64(buf, uint64(p.ID))
					buf = binary.BigEndian.AppendUint32(buf, uint32(p.Origin))
				}
			}
		}
	}
	return buf
}

// encodeInitialRegion returns the canonical encoding of region u in its
// initial state (the emul.Program.Init value).
func (a *Automaton) encodeInitialRegion(u geo.RegionID) []byte {
	d, ok := a.regions[u]
	if !ok {
		return nil
	}
	var buf []byte
	buf = binary.BigEndian.AppendUint16(buf, regionStateVersion)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(d.levels)))
	for _, level := range d.levels {
		buf = binary.BigEndian.AppendUint16(buf, uint16(level))
		buf = binary.BigEndian.AppendUint32(buf, 0)
	}
	return buf
}

// decoder is a bounds-checked big-endian cursor.
type decoder struct {
	buf []byte
	off int
	err error
}

func (r *decoder) u8() byte {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *decoder) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *decoder) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *decoder) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// bytes reads n raw bytes without copying (callers that retain the slice
// hold a view of the input buffer).
func (r *decoder) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail()
		return nil
	}
	v := r.buf[r.off : r.off+n]
	r.off += n
	return v
}

func (r *decoder) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("tracker: truncated region state at offset %d", r.off)
	}
}

// remaining reports how many undecoded bytes are left.
func (r *decoder) remaining() int { return len(r.buf) - r.off }

// Minimum encoded sizes, used to sanity-bound length-prefixed counts
// before allocating: a count that could not possibly be satisfied by the
// remaining bytes is rejected up front, so a crafted frame cannot force a
// huge allocation.
const (
	encObjMinSize   = 5*4 + 1       // v2: object id + pointers + flags byte
	encObjMinSizeV1 = 5*4 + 4*8 + 4 // v1: pointers + timers + pending count
	encPendingSize  = 8 + 4         // findID + origin
)

// decodeTimer reads one timer deadline, rejecting negative values: the
// encoder only ever writes absolute times ≥ 0 (or sim.Forever), so a
// negative deadline marks a corrupted or hostile frame.
func (r *decoder) decodeTimer() sim.Time {
	at := sim.Time(r.u64())
	if r.err == nil && at < 0 {
		r.err = fmt.Errorf("tracker: negative timer deadline %d at offset %d", at, r.off)
	}
	return at
}

// decodeArmedTimer reads one version-2 armed deadline: finite (the encoder
// elides unarmed slots, so a written ∞ is non-canonical) and non-negative.
func (r *decoder) decodeArmedTimer() sim.Time {
	at := r.decodeTimer()
	if r.err == nil && at == sim.Forever {
		r.err = fmt.Errorf("tracker: armed timer slot carries ∞ at offset %d", r.off)
	}
	return at
}

// DecodeRegion implements vsa.Automaton: it replaces region u's machine
// state with a previously encoded value. Host timers are deliberately not
// touched — the decoded deadlines are authoritative and host wakeups are
// validated against them, so a replica adopting a checkpoint needs no
// timer reconciliation.
//
// The input is untrusted (a networked host receives checkpoints over the
// wire): length-prefixed counts are bounded against the remaining bytes
// before any allocation, canonical form is enforced (levels in host order,
// object ids strictly ascending, deadlines non-negative, no reserved flag
// bits, armed slots finite, a pending section only when non-empty), and
// nothing is committed until the whole frame parses — so every accepted
// version-2 frame is one EncodeRegion could have produced, byte for byte.
// Version-1 frames are accepted for pre-upgrade checkpoints and re-encode
// to the equivalent version-2 form.
func (a *Automaton) DecodeRegion(u geo.RegionID, state []byte) error {
	d, ok := a.regions[u]
	if !ok {
		if len(state) == 0 {
			return nil
		}
		return fmt.Errorf("tracker: region %v hosts no processes", u)
	}
	r := &decoder{buf: state}
	version := r.u16()
	if r.err == nil && version != regionStateVersion && version != regionStateVersionV1 {
		return fmt.Errorf("tracker: region state version %d, want %d or %d",
			version, regionStateVersion, regionStateVersionV1)
	}
	objMinSize := encObjMinSize
	if version == regionStateVersionV1 {
		objMinSize = encObjMinSizeV1
	}
	numLevels := int(r.u16())
	if r.err == nil && numLevels != len(d.levels) {
		return fmt.Errorf("tracker: region %v state has %d levels, host has %d", u, numLevels, len(d.levels))
	}
	type decodedProc struct {
		pr   *Process
		objs []*objState
	}
	decoded := make([]decodedProc, 0, numLevels)
	for i := 0; i < numLevels && r.err == nil; i++ {
		level := int(r.u16())
		if r.err == nil && level != d.levels[i] {
			return fmt.Errorf("tracker: region %v state level %d at index %d, want canonical order %v", u, level, i, d.levels)
		}
		pr := d.byLevel[level]
		if pr == nil {
			return fmt.Errorf("tracker: region %v state names level %d, which it does not host", u, level)
		}
		numObjs := int(r.u32())
		if r.err == nil && numObjs > r.remaining()/objMinSize {
			return fmt.Errorf("tracker: region %v state claims %d objects with %d bytes left", u, numObjs, r.remaining())
		}
		var objs []*objState
		if numObjs > 0 {
			objs = make([]*objState, 0, numObjs)
		}
		prevObj := ObjectID(0)
		for j := 0; j < numObjs && r.err == nil; j++ {
			obj := ObjectID(r.u32())
			if r.err == nil && j > 0 && obj <= prevObj {
				return fmt.Errorf("tracker: region %v state object %d after %d, want strictly ascending", u, obj, prevObj)
			}
			prevObj = obj
			st := &objState{
				pr:        pr,
				obj:       obj,
				c:         hier.ClusterID(r.u32()),
				p:         hier.ClusterID(r.u32()),
				nbrptup:   hier.ClusterID(r.u32()),
				nbrptdown: hier.ClusterID(r.u32()),
			}
			slots := [4]sim.Time{sim.Forever, sim.Forever, sim.Forever, sim.Forever}
			hasPending := false
			if version == regionStateVersionV1 {
				for s := range slots {
					slots[s] = r.decodeTimer()
				}
				hasPending = true // v1 always carries the pending count
			} else {
				flags := r.u8()
				if r.err == nil && flags&encFlagReserved != 0 {
					return fmt.Errorf("tracker: region %v state object %d has reserved flag bits %#x", u, obj, flags)
				}
				for s := range slots {
					if flags&(1<<s) != 0 {
						slots[s] = r.decodeArmedTimer()
					}
				}
				hasPending = flags&encFlagPending != 0
			}
			st.timer = timerSlot{st: st, kind: timerGrowShrink, at: slots[0]}
			st.nbrTimeout = timerSlot{st: st, kind: timerNbrTimeout, at: slots[1]}
			st.lease = timerSlot{st: st, kind: timerLease, at: slots[2]}
			st.nbrLease = timerSlot{st: st, kind: timerNbrLease, at: slots[3]}
			if hasPending {
				numPending := int(r.u32())
				if r.err == nil && version == regionStateVersion && numPending == 0 {
					return fmt.Errorf("tracker: region %v state object %d flags pending finds but carries none", u, obj)
				}
				if r.err == nil && numPending > r.remaining()/encPendingSize {
					return fmt.Errorf("tracker: region %v state claims %d pending finds with %d bytes left", u, numPending, r.remaining())
				}
				if numPending > 0 {
					st.pending = make([]FindPayload, 0, numPending)
				}
				for p := 0; p < numPending && r.err == nil; p++ {
					id := FindID(r.u64())
					origin := geo.RegionID(r.u32())
					st.pending = append(st.pending, FindPayload{ID: id, Origin: origin})
				}
			}
			objs = append(objs, st)
		}
		decoded = append(decoded, decodedProc{pr: pr, objs: objs})
	}
	if r.err != nil {
		return r.err
	}
	if r.off != len(state) {
		return fmt.Errorf("tracker: %d trailing bytes in region %v state", len(state)-r.off, u)
	}
	// Commit only after a fully successful parse. The objects decoded in
	// strictly ascending order are exactly the sorted table invariant.
	for _, dp := range decoded {
		dp.pr.objs = objTable{s: dp.objs}
	}
	return nil
}
