package tracker

import (
	"testing"
	"time"

	"vinestalk/internal/cgcast"
	"vinestalk/internal/evader"
	"vinestalk/internal/geo"
	"vinestalk/internal/geocast"
	"vinestalk/internal/hier"
	"vinestalk/internal/metrics"
	"vinestalk/internal/sim"
	"vinestalk/internal/vbcast"
	"vinestalk/internal/vsa"
)

const (
	delta = 10 * time.Millisecond
	lagE  = 5 * time.Millisecond
	unit  = delta + lagE
)

// fixture assembles the full stack: grid tiling, hierarchy, VSA layer,
// V-bcast, geocast, C-gcast, tracker network, one stationary client per
// region, and the evader.
type fixture struct {
	t      testing.TB
	k      *sim.Kernel
	tiling *geo.GridTiling
	h      *hier.Hierarchy
	layer  *vsa.Layer
	ledger *metrics.Ledger
	net    *Network
	ev     *evader.Evader
	founds []FindResult
}

type fixtureConfig struct {
	side       int
	r          int
	start      geo.RegionID
	alwaysUp   bool
	heartbeat  sim.Time
	tRestart   sim.Time
	netOptions []Option
	cgOptions  []cgcast.Option
}

func newFixture(t testing.TB, cfg fixtureConfig) *fixture {
	t.Helper()
	if cfg.r == 0 {
		cfg.r = 2
	}
	f := &fixture{t: t, k: sim.New(42)}
	f.tiling = geo.MustGridTiling(cfg.side, cfg.side)
	f.h = hier.MustGrid(f.tiling, cfg.r)
	var layerOpts []vsa.Option
	if cfg.alwaysUp {
		layerOpts = append(layerOpts, vsa.WithAlwaysAlive())
	}
	if cfg.tRestart > 0 {
		layerOpts = append(layerOpts, vsa.WithTRestart(cfg.tRestart))
	}
	f.layer = vsa.NewLayer(f.k, f.tiling, layerOpts...)
	f.ledger = metrics.NewLedger()
	vb := vbcast.New(f.k, f.layer, delta, lagE, f.ledger)
	gc := geocast.New(f.k, f.layer, f.h.Graph(), vb, f.ledger)
	geom := hier.MeasureGeometry(f.h)
	cg, err := cgcast.New(f.h, f.layer, gc, vb, geom, f.ledger, cfg.cgOptions...)
	if err != nil {
		t.Fatal(err)
	}
	opts := append([]Option{WithFoundCallback(func(r FindResult) {
		f.founds = append(f.founds, r)
	})}, cfg.netOptions...)
	if cfg.heartbeat > 0 {
		opts = append(opts, WithHeartbeat(cfg.heartbeat))
	}
	net, err := New(cg, geom, opts...)
	if err != nil {
		t.Fatal(err)
	}
	f.net = net
	if err := net.AddStationaryClients(); err != nil {
		t.Fatal(err)
	}
	f.layer.StartAllAlive()
	ev, err := evader.New(f.tiling, cfg.start, net.Sink())
	if err != nil {
		t.Fatal(err)
	}
	f.ev = ev
	net.AttachEvader(ev.Region)
	return f
}

// settle runs the kernel until the event queue drains (heartbeat-free
// fixtures) with a livelock guard.
func (f *fixture) settle() {
	f.t.Helper()
	if _, err := f.k.RunLimited(2_000_000); err != nil {
		f.t.Fatalf("simulation did not settle: %v", err)
	}
	if !f.net.MoveQuiescent() {
		f.t.Fatal("event queue drained but network not move-quiescent")
	}
}

// trackingPath walks c pointers from the root to the evader's level-0
// cluster, failing the test if the walk dead-ends or cycles.
func (f *fixture) trackingPath() []hier.ClusterID {
	f.t.Helper()
	var path []hier.ClusterID
	seen := make(map[hier.ClusterID]bool)
	cur := f.h.Root()
	for {
		if seen[cur] {
			f.t.Fatalf("tracking path cycles at %v (path %v)", cur, path)
		}
		seen[cur] = true
		path = append(path, cur)
		c, _, _, _ := f.net.Process(cur).Pointers()
		if c == cur {
			return path
		}
		if c == hier.NoCluster {
			f.t.Fatalf("tracking path dead-ends at %v (path %v)", cur, path)
		}
		cur = c
	}
}

// assertTracksEvader checks the tracking path terminates at the evader's
// region and that off-path processes are clean.
func (f *fixture) assertTracksEvader() {
	f.t.Helper()
	path := f.trackingPath()
	leaf := path[len(path)-1]
	if want := f.h.Cluster(f.ev.Region(), 0); leaf != want {
		f.t.Fatalf("tracking path ends at %v, want evader's level-0 cluster %v", leaf, want)
	}
	onPath := make(map[hier.ClusterID]bool, len(path))
	for _, c := range path {
		onPath[c] = true
	}
	for id := 0; id < f.h.NumClusters(); id++ {
		c, p, _, _ := f.net.Process(hier.ClusterID(id)).Pointers()
		if onPath[hier.ClusterID(id)] {
			continue
		}
		if c != hier.NoCluster || p != hier.NoCluster {
			f.t.Errorf("off-path process %v has c=%v p=%v, want ⊥/⊥", hier.ClusterID(id), c, p)
		}
	}
}
