package tracker

import (
	"testing"
	"testing/quick"
	"time"

	"vinestalk/internal/geo"
	"vinestalk/internal/hier"
	"vinestalk/internal/sim"
)

// Property: DefaultSchedule satisfies condition (1) for the measured
// geometry of any random small grid and any positive unit delay.
func TestDefaultScheduleAlwaysValidQuick(t *testing.T) {
	f := func(sideSeed, rSeed uint8, unitMillis uint16) bool {
		side := 4 + int(sideSeed)%9 // 4..12
		r := 2 + int(rSeed)%3       // 2..4
		unit := sim.Time(int(unitMillis)%100+1) * time.Millisecond
		h := hier.MustGrid(geo.MustGridTiling(side, side), r)
		geom := hier.MeasureGeometry(h)
		sch := DefaultSchedule(geom, unit)
		return sch.Validate(geom, unit) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: DefaultSchedule also validates against the closed-form grid
// geometry for any base and depth (the formulas the paper states).
func TestDefaultScheduleFormulaGeometryQuick(t *testing.T) {
	f := func(rSeed, maxSeed uint8) bool {
		r := 2 + int(rSeed)%5          // 2..6
		maxLevel := 1 + int(maxSeed)%6 // 1..6
		unit := 15 * time.Millisecond
		geom := hier.GridFormulas(r, maxLevel)
		sch := DefaultSchedule(geom, unit)
		return sch.Validate(geom, unit) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: shaving the slack of any level's shrink timer below the
// condition-(1) line is rejected by Validate.
func TestScheduleSlackRemovalRejectedQuick(t *testing.T) {
	unit := 15 * time.Millisecond
	geom := hier.GridFormulas(2, 4)
	base := DefaultSchedule(geom, unit)
	f := func(levelSeed uint8) bool {
		level := int(levelSeed) % len(base.S)
		broken := Schedule{
			G: append([]sim.Time(nil), base.G...),
			S: append([]sim.Time(nil), base.S...),
		}
		// Remove this level's entire slack contribution and a bit more:
		// the partial sums from this level on now fall to exactly the
		// bound or below, violating the strict inequality.
		broken.S[level] = broken.G[level] - 1
		return broken.Validate(geom, unit) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: on a quiescent tracked network, every region can find the
// evader — the liveness half of the §III tracking-service spec — for
// random evader positions.
func TestEveryRegionFindsEvaderQuick(t *testing.T) {
	f := func(startSeed, originSeed uint8) bool {
		side := 8
		tl := geo.MustGridTiling(side, side)
		start := geo.RegionID(int(startSeed) % tl.NumRegions())
		origin := geo.RegionID(int(originSeed) % tl.NumRegions())
		fx := newFixture(t, fixtureConfig{side: side, start: start, alwaysUp: true})
		fx.settle()
		id, err := fx.net.Find(origin)
		if err != nil {
			return false
		}
		fx.settle()
		if !fx.net.FindDone(id) {
			t.Logf("find from %v with evader at %v incomplete", origin, start)
			return false
		}
		for _, r := range fx.founds {
			if r.ID == id && r.FoundAt != start {
				t.Logf("found at %v, want %v", r.FoundAt, start)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
