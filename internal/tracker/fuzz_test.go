package tracker

import (
	"bytes"
	"encoding/binary"
	"testing"

	"vinestalk/internal/evader"
	"vinestalk/internal/geo"
	"vinestalk/internal/sim"
)

// encodeRegionV1 renders region u's state in the legacy version-1 layout
// (fixed-width: all four timer deadlines plus a pending count per object),
// seeding the fuzzer's backward-compatibility path.
func encodeRegionV1(a *Automaton, u geo.RegionID) []byte {
	d, ok := a.regions[u]
	if !ok {
		return nil
	}
	var buf []byte
	buf = binary.BigEndian.AppendUint16(buf, regionStateVersionV1)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(d.levels)))
	for _, level := range d.levels {
		pr := d.byLevel[level]
		buf = binary.BigEndian.AppendUint16(buf, uint16(level))
		buf = binary.BigEndian.AppendUint32(buf, uint32(pr.objs.len()))
		for _, st := range pr.objs.s {
			buf = binary.BigEndian.AppendUint32(buf, uint32(st.obj))
			buf = binary.BigEndian.AppendUint32(buf, uint32(st.c))
			buf = binary.BigEndian.AppendUint32(buf, uint32(st.p))
			buf = binary.BigEndian.AppendUint32(buf, uint32(st.nbrptup))
			buf = binary.BigEndian.AppendUint32(buf, uint32(st.nbrptdown))
			buf = binary.BigEndian.AppendUint64(buf, uint64(st.timer.at))
			buf = binary.BigEndian.AppendUint64(buf, uint64(st.nbrTimeout.at))
			buf = binary.BigEndian.AppendUint64(buf, uint64(st.lease.at))
			buf = binary.BigEndian.AppendUint64(buf, uint64(st.nbrLease.at))
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(st.pending)))
			for _, p := range st.pending {
				buf = binary.BigEndian.AppendUint64(buf, uint64(p.ID))
				buf = binary.BigEndian.AppendUint32(buf, uint32(p.Origin))
			}
		}
	}
	return buf
}

// FuzzDecodeRegion throws untrusted bytes at the region-state codec — the
// frames a networked host receives over the wire. Three properties must
// hold for every input:
//
//  1. no panic and no unbounded allocation (length-prefixed counts are
//     bounded against the remaining bytes before any slice is made);
//  2. a rejected frame leaves the machine state untouched;
//  3. an accepted version-2 frame is canonical: re-encoding the region
//     reproduces the input byte for byte. An accepted version-1 frame
//     re-encodes to version 2, and that re-encoding is a fixpoint (it
//     decodes and re-encodes to itself) — the upgrade path for
//     pre-version-2 checkpoints.
func FuzzDecodeRegion(f *testing.F) {
	fx := newFixture(f, fixtureConfig{side: 4, start: 5, alwaysUp: true})
	// Two extra tracked objects make every seed a multi-object encoding:
	// several per-level table rows, exercising the strictly-ascending
	// object-id check and mid-table truncation handling.
	for obj, start := range map[ObjectID]geo.RegionID{1: 10, 2: 3} {
		ev, err := evader.New(fx.tiling, start, fx.net.SinkFor(obj))
		if err != nil {
			f.Fatal(err)
		}
		fx.net.AttachObject(obj, ev.Region)
	}
	fx.settle()
	if err := fx.ev.MoveTo(6); err != nil {
		f.Fatal(err)
	}
	fx.settle()
	if _, err := fx.net.Find(geo.RegionID(12)); err != nil {
		f.Fatal(err)
	}
	fx.settle()
	aut := fx.net.Automaton()

	// Seeds: every live region encoding (version 2 and the legacy version 1
	// of the same state), plus hostile shapes — truncations (including one
	// cut mid-object-table), an implausible object count, a reserved flag
	// bit, and a bad version.
	for u := 0; u < fx.tiling.NumRegions(); u++ {
		f.Add(aut.EncodeRegion(geo.RegionID(u)))
		f.Add(encodeRegionV1(aut, geo.RegionID(u)))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 1})
	enc := aut.EncodeRegion(0)
	f.Add(enc[:len(enc)-1])
	hugeObjs := bytes.Clone(enc)
	binary.BigEndian.PutUint32(hugeObjs[6:], 0xFFFFFFFF) // first level's numObjs
	f.Add(hugeObjs)
	if len(enc) > 10+encObjMinSize {
		// Truncate in the middle of the first object's row: the count
		// promises more table than the bytes deliver, so the parse must
		// fail and commit nothing.
		f.Add(enc[:10+encObjMinSize-1])
		badFlags := bytes.Clone(enc)
		badFlags[10+20] |= 0x80 // reserved flag bit of the first object
		f.Add(badFlags)
	}
	badVersion := bytes.Clone(enc)
	binary.BigEndian.PutUint16(badVersion[0:], 99)
	f.Add(badVersion)

	const region = geo.RegionID(0)
	before := aut.EncodeRegion(region)
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := aut.DecodeRegion(region, data); err != nil {
			if got := aut.EncodeRegion(region); !bytes.Equal(got, before) {
				t.Fatalf("rejected frame mutated region state (err %v)", err)
			}
			return
		}
		got := aut.EncodeRegion(region)
		if len(data) >= 2 && binary.BigEndian.Uint16(data) == regionStateVersion {
			if !bytes.Equal(got, data) {
				t.Fatalf("accepted frame is not canonical:\n in  %x\n out %x", data, got)
			}
		} else {
			// Version-1 input: the re-encoding is version 2 and must be a
			// fixpoint of decode∘encode (same state, canonical bytes).
			if err := aut.DecodeRegion(region, got); err != nil {
				t.Fatalf("re-encoding of accepted v1 frame rejected: %v", err)
			}
			if again := aut.EncodeRegion(region); !bytes.Equal(again, got) {
				t.Fatalf("v1 upgrade is not a fixpoint:\n first  %x\n second %x", got, again)
			}
		}
		if err := aut.DecodeRegion(region, before); err != nil {
			t.Fatalf("restoring pristine state: %v", err)
		}
	})
}

// TestDecodeRegionTruncatedMidTable pins the commit-after-full-parse
// property on the compact object table: a frame cut in the middle of the
// table is rejected outright and the region's prior state — including rows
// the truncated frame had already parsed — survives untouched.
func TestDecodeRegionTruncatedMidTable(t *testing.T) {
	fx := newFixture(t, fixtureConfig{side: 4, start: 5, alwaysUp: true})
	ev2 := addSecondEvader(t, fx, 1, geo.RegionID(10))
	_ = ev2
	fx.settle()
	aut := fx.net.Automaton()

	// Pick a region whose encoding carries at least one object row.
	var region geo.RegionID
	var enc []byte
	for u := 0; u < fx.tiling.NumRegions(); u++ {
		if e := aut.EncodeRegion(geo.RegionID(u)); len(e) > 10+encObjMinSize {
			region, enc = geo.RegionID(u), e
			break
		}
	}
	if enc == nil {
		t.Fatal("no region encoding carries an object row")
	}
	before := aut.EncodeRegion(region)
	for _, cut := range []int{10 + encObjMinSize - 1, len(enc) - 1, len(enc) / 2} {
		if cut <= 0 || cut >= len(enc) {
			continue
		}
		if err := aut.DecodeRegion(region, enc[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(enc))
		}
		if got := aut.EncodeRegion(region); !bytes.Equal(got, before) {
			t.Fatalf("truncation at %d mutated region state", cut)
		}
	}
}

// TestDecodeRegionV1Compat pins the upgrade path: a version-1 encoding of
// live state decodes into exactly the state the version-2 encoding of the
// same machine describes.
func TestDecodeRegionV1Compat(t *testing.T) {
	fx := newFixture(t, fixtureConfig{side: 4, start: 5, alwaysUp: true})
	addSecondEvader(t, fx, 1, geo.RegionID(10))
	fx.settle()
	aut := fx.net.Automaton()
	for u := 0; u < fx.tiling.NumRegions(); u++ {
		region := geo.RegionID(u)
		want := aut.EncodeRegion(region)
		v1 := encodeRegionV1(aut, region)
		if err := aut.DecodeRegion(region, v1); err != nil {
			t.Fatalf("region %v: v1 frame rejected: %v", region, err)
		}
		if got := aut.EncodeRegion(region); !bytes.Equal(got, want) {
			t.Fatalf("region %v: v1 round trip diverged:\n want %x\n got  %x", region, want, got)
		}
	}
}

// TestEncodeRegionElidesQuiescentSlots pins the version-2 compactness
// claim: an on-path object with no armed timers and no pending finds costs
// exactly encObjMinSize bytes in the table, versus v1's fixed 56.
func TestEncodeRegionElidesQuiescentSlots(t *testing.T) {
	fx := newFixture(t, fixtureConfig{side: 4, start: 5, alwaysUp: true})
	fx.settle()
	aut := fx.net.Automaton()
	// The evader's region hosts a level-0 process with c = the cluster
	// itself, unarmed timers, nothing pending after settle.
	u := fx.ev.Region()
	pr := aut.processAt(u, 0)
	if pr == nil || pr.objs.len() == 0 {
		t.Fatalf("evader region %v hosts no live level-0 object state", u)
	}
	st := pr.objs.s[0]
	if st.timer.Armed() || st.nbrTimeout.Armed() || st.lease.Armed() || st.nbrLease.Armed() || len(st.pending) > 0 {
		t.Fatalf("settled state unexpectedly busy: %+v", st)
	}
	enc := aut.EncodeRegion(u)
	v1 := encodeRegionV1(aut, u)
	// Every fully-quiescent-slot row saves encObjMinSizeV1-encObjMinSize
	// bytes, so the whole-region encoding must shrink.
	if len(enc) >= len(v1) {
		t.Fatalf("v2 encoding (%d bytes) not smaller than v1 (%d bytes)", len(enc), len(v1))
	}
	_ = sim.Forever
}
