package tracker

import (
	"bytes"
	"encoding/binary"
	"testing"

	"vinestalk/internal/geo"
)

// FuzzDecodeRegion throws untrusted bytes at the region-state codec — the
// frames a networked host receives over the wire. Three properties must
// hold for every input:
//
//  1. no panic and no unbounded allocation (length-prefixed counts are
//     bounded against the remaining bytes before any slice is made);
//  2. a rejected frame leaves the machine state untouched;
//  3. an accepted frame is canonical: re-encoding the region reproduces
//     the input byte for byte, so every accepted frame is one
//     EncodeRegion could have produced.
func FuzzDecodeRegion(f *testing.F) {
	fx := newFixture(f, fixtureConfig{side: 4, start: 5, alwaysUp: true})
	fx.settle()
	if err := fx.ev.MoveTo(6); err != nil {
		f.Fatal(err)
	}
	fx.settle()
	if _, err := fx.net.Find(geo.RegionID(12)); err != nil {
		f.Fatal(err)
	}
	fx.settle()
	aut := fx.net.Automaton()

	// Seeds: every live region encoding, plus hostile shapes — truncations,
	// an implausible object count, an implausible pending count, and a
	// negative timer deadline.
	for u := 0; u < fx.tiling.NumRegions(); u++ {
		f.Add(aut.EncodeRegion(geo.RegionID(u)))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 1})
	enc := aut.EncodeRegion(0)
	f.Add(enc[:len(enc)-1])
	hugeObjs := bytes.Clone(enc)
	binary.BigEndian.PutUint32(hugeObjs[6:], 0xFFFFFFFF) // first level's numObjs
	f.Add(hugeObjs)
	if len(enc) > 10+56 { // region 0 hosts at least one object
		hugePending := bytes.Clone(enc)
		binary.BigEndian.PutUint32(hugePending[10+52:], 0xFFFFFFFF)
		f.Add(hugePending)
		negTimer := bytes.Clone(enc)
		binary.BigEndian.PutUint64(negTimer[10+20:], 0x8000000000000000)
		f.Add(negTimer)
	}

	const region = geo.RegionID(0)
	before := aut.EncodeRegion(region)
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := aut.DecodeRegion(region, data); err != nil {
			if got := aut.EncodeRegion(region); !bytes.Equal(got, before) {
				t.Fatalf("rejected frame mutated region state (err %v)", err)
			}
			return
		}
		if got := aut.EncodeRegion(region); !bytes.Equal(got, data) {
			t.Fatalf("accepted frame is not canonical:\n in  %x\n out %x", data, got)
		}
		if err := aut.DecodeRegion(region, before); err != nil {
			t.Fatalf("restoring pristine state: %v", err)
		}
	})
}
