package tracker

import (
	"math/rand"
	"testing"

	"vinestalk/internal/hier"
	"vinestalk/internal/sim"
)

// Self-stabilization (§VII): the paper argues VINESTALK becomes
// self-stabilizing with heartbeat techniques since all its building blocks
// are. These tests start the tracker in adversarially corrupted states —
// arbitrary pointer values with arbitrary (finite) timer deadlines, the
// standard arbitrary-start setup for timed automata stabilization — and
// require the heartbeat machinery to converge back to a working structure.

// corrupt sets random pointers and arms the state leases with random
// deadlines, at k randomly chosen processes. Timers are part of the state
// being corrupted: a corrupted-on lease models an arbitrary timer value,
// which is what lets the cleanup machinery see the garbage.
func corrupt(f *fixture, rng *rand.Rand, k int) {
	n := f.h.NumClusters()
	randomCluster := func() hier.ClusterID {
		if rng.Intn(4) == 0 {
			return hier.NoCluster
		}
		return hier.ClusterID(rng.Intn(n))
	}
	for i := 0; i < k; i++ {
		st := f.net.Process(hier.ClusterID(rng.Intn(n))).state(DefaultObject)
		st.c = randomCluster()
		st.p = randomCluster()
		st.nbrptup = randomCluster()
		st.nbrptdown = randomCluster()
		deadline := sim.Time(rng.Int63n(int64(f.net.hb.leaseFor(st.pr.level))))
		st.lease.SetAfter(deadline)
		st.nbrLease.SetAfter(deadline)
		if rng.Intn(2) == 0 {
			st.timer.SetAfter(sim.Time(rng.Int63n(int64(f.net.sched.S[0] * 4))))
		}
	}
}

func TestStabilizationFromCorruptedPointers(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		f := newFixture(t, fixtureConfig{side: 8, start: 9, heartbeat: 8 * unit, tRestart: unit})
		f.k.RunFor(100 * unit) // healthy structure established
		rng := rand.New(rand.NewSource(seed))
		corrupt(f, rng, 20)

		// Convergence: leases expire, garbage shrinks away, heartbeats
		// rebuild the true path.
		f.k.RunFor(1500 * unit)
		f.assertPathReachesEvader(t)

		id, err := f.net.Find(f.tiling.RegionAt(7, 7))
		if err != nil {
			t.Fatal(err)
		}
		f.k.RunFor(600 * unit)
		if !f.net.FindDone(id) {
			t.Fatalf("seed %d: find did not complete after stabilization", seed)
		}
	}
}

func TestStabilizationClearsOffPathGarbage(t *testing.T) {
	f := newFixture(t, fixtureConfig{side: 8, start: 0, heartbeat: 8 * unit, tRestart: unit})
	f.k.RunFor(100 * unit)
	rng := rand.New(rand.NewSource(7))
	corrupt(f, rng, 15)
	f.k.RunFor(2000 * unit)

	// After convergence, primary pointers exist only on the true path.
	f.assertPathReachesEvader(t)
	onPath := make(map[hier.ClusterID]bool)
	cur := f.h.Root()
	for {
		onPath[cur] = true
		c, _, _, _ := f.net.Process(cur).Pointers()
		if c == cur || c == hier.NoCluster {
			break
		}
		cur = c
	}
	for id := 0; id < f.h.NumClusters(); id++ {
		if onPath[hier.ClusterID(id)] {
			continue
		}
		c, p, _, _ := f.net.Process(hier.ClusterID(id)).Pointers()
		if c != hier.NoCluster || p != hier.NoCluster {
			t.Errorf("off-path garbage survives at %v: c=%v p=%v", hier.ClusterID(id), c, p)
		}
	}
}

func TestStabilizationWithConcurrentMoves(t *testing.T) {
	f := newFixture(t, fixtureConfig{side: 8, start: 9, heartbeat: 8 * unit, tRestart: unit})
	f.k.RunFor(100 * unit)
	rng := rand.New(rand.NewSource(3))
	corrupt(f, rng, 12)

	// The evader keeps moving while the structure stabilizes.
	for i := 0; i < 6; i++ {
		nbrs := f.tiling.Neighbors(f.ev.Region())
		if err := f.ev.MoveTo(nbrs[rng.Intn(len(nbrs))]); err != nil {
			t.Fatal(err)
		}
		f.k.RunFor(100 * unit)
	}
	f.k.RunFor(1500 * unit)
	f.assertPathReachesEvader(t)
	id, err := f.net.Find(f.tiling.RegionAt(0, 7))
	if err != nil {
		t.Fatal(err)
	}
	f.k.RunFor(600 * unit)
	if !f.net.FindDone(id) {
		t.Fatal("find did not complete after stabilization under movement")
	}
}

// Without heartbeats there is no stabilization machinery: corruption can
// permanently break the structure (this is the motivating negative).
func TestNoStabilizationWithoutHeartbeat(t *testing.T) {
	f := newFixture(t, fixtureConfig{side: 8, start: 9, alwaysUp: true})
	f.settle()
	// Sever the path at its bottom: reset the evader's level-0 and level-1
	// processes and scrub every secondary pointer referencing them, as a
	// VSA reset would. Nothing repairs this without heartbeats.
	for lvl := 0; lvl <= 1; lvl++ {
		c := f.h.Cluster(f.ev.Region(), lvl)
		f.net.Process(c).reset()
		for _, nb := range f.h.Nbrs(c) {
			st := f.net.Process(nb).state(DefaultObject)
			if st.nbrptup == c {
				st.nbrptup = hier.NoCluster
			}
			if st.nbrptdown == c {
				st.nbrptdown = hier.NoCluster
			}
		}
	}
	id, err := f.net.Find(f.tiling.RegionAt(7, 7))
	if err != nil {
		t.Fatal(err)
	}
	f.k.RunFor(1000 * unit)
	if f.net.FindDone(id) {
		t.Fatal("find completed through a severed path without any repair machinery")
	}
}
