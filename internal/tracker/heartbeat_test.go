package tracker

import (
	"testing"

	"vinestalk/internal/geo"
	"vinestalk/internal/vsa"
)

// breakPathAtLevel1 kills the VSA hosting the level-1 cluster on the
// evader's tracking path by evacuating its head region's clients, and
// returns that head region and the region its clients went to.
func breakPathAtLevel1(t *testing.T, f *fixture) (head, refuge geo.RegionID) {
	t.Helper()
	lvl1 := f.h.Cluster(f.ev.Region(), 1)
	head = f.h.Head(lvl1)
	refuge = f.tiling.Neighbors(head)[0]
	for _, id := range f.layer.ClientsIn(head) {
		if err := f.layer.MoveClient(id, refuge); err != nil {
			t.Fatal(err)
		}
	}
	if f.layer.Alive(head) {
		t.Fatal("level-1 head VSA still alive after evacuation")
	}
	return head, refuge
}

func TestFailureWithoutHeartbeatBreaksFinds(t *testing.T) {
	f := newFixture(t, fixtureConfig{side: 8, start: 0, tRestart: unit})
	f.settle()
	head, _ := breakPathAtLevel1(t, f)
	// Repopulate the head region so its VSA restarts (with fresh state).
	if err := f.layer.MoveClient(vsa.ClientID(int(head)), head); err != nil {
		t.Fatal(err)
	}
	f.k.RunFor(4 * unit)
	if !f.layer.Alive(head) {
		t.Fatal("VSA did not restart")
	}
	// The tracking path is broken at level 1 and nothing repairs it.
	id, err := f.net.Find(f.tiling.RegionAt(7, 7))
	if err != nil {
		t.Fatal(err)
	}
	f.k.RunFor(400 * unit)
	if f.net.FindDone(id) {
		t.Fatal("find completed through a broken path without heartbeats")
	}
}

func TestHeartbeatHealsPathAfterVSARestart(t *testing.T) {
	f := newFixture(t, fixtureConfig{side: 8, start: 0, tRestart: unit, heartbeat: 8 * unit})
	f.k.RunFor(100 * unit) // build path; heartbeats keep the queue busy
	f.assertPathReachesEvader(t)

	head, _ := breakPathAtLevel1(t, f)
	if err := f.layer.MoveClient(vsa.ClientID(int(head)), head); err != nil {
		t.Fatal(err)
	}
	// Wait for restart + a heartbeat to climb through and heal the break.
	f.k.RunFor(400 * unit)
	f.assertPathReachesEvader(t)

	id, err := f.net.Find(f.tiling.RegionAt(7, 7))
	if err != nil {
		t.Fatal(err)
	}
	f.k.RunFor(400 * unit)
	if !f.net.FindDone(id) {
		t.Fatal("find did not complete after heartbeat healing")
	}
	for _, r := range f.founds {
		if r.ID == id && r.FoundAt != f.ev.Region() {
			t.Errorf("found at %v, want %v", r.FoundAt, f.ev.Region())
		}
	}
}

func TestHeartbeatSurvivesEvaderMovesWithFailures(t *testing.T) {
	f := newFixture(t, fixtureConfig{side: 8, start: 0, tRestart: unit, heartbeat: 8 * unit})
	f.k.RunFor(100 * unit)
	// Move the evader while a mid-path VSA is down.
	head, _ := breakPathAtLevel1(t, f)
	if err := f.ev.MoveTo(f.tiling.RegionAt(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := f.layer.MoveClient(vsa.ClientID(int(head)), head); err != nil {
		t.Fatal(err)
	}
	f.k.RunFor(600 * unit)
	f.assertPathReachesEvader(t)
	id, err := f.net.Find(f.tiling.RegionAt(6, 6))
	if err != nil {
		t.Fatal(err)
	}
	f.k.RunFor(400 * unit)
	if !f.net.FindDone(id) {
		t.Fatal("find did not complete after move during failure")
	}
}

// assertPathReachesEvader is a weaker version of assertTracksEvader for
// heartbeat fixtures: stale side state may still be expiring, but the root
// must reach the evader via c pointers.
func (f *fixture) assertPathReachesEvader(t *testing.T) {
	t.Helper()
	cur := f.h.Root()
	seen := make(map[int32]bool)
	for {
		if seen[int32(cur)] {
			t.Fatalf("c-pointer walk cycles at %v", cur)
		}
		seen[int32(cur)] = true
		pr := f.net.Process(cur)
		c, _, _, _ := pr.Pointers()
		if c == cur {
			if want := f.h.Cluster(f.ev.Region(), 0); cur != want {
				t.Fatalf("path terminates at %v, want %v", cur, want)
			}
			return
		}
		if !c.Valid() {
			t.Fatalf("c-pointer walk dead-ends at %v (level %d)", cur, f.h.Level(cur))
		}
		cur = c
	}
}

// The client that detects the evader crash-stops; when a client is back in
// the region (restart), the arrival-detection of Network.AttachEvader
// re-establishes detection and heartbeats resume, keeping the structure
// alive (without it, refreshes stop and leases eventually dissolve the
// path).
func TestDetectorClientFailureAndRestart(t *testing.T) {
	f := newFixture(t, fixtureConfig{side: 8, start: 9, heartbeat: 8 * unit, tRestart: unit})
	f.k.RunFor(100 * unit)
	f.assertPathReachesEvader(t)

	detector := vsa.ClientID(9) // the stationary client of the evader's region
	f.layer.FailClient(detector)
	f.k.RunFor(20 * unit)
	if err := f.layer.RestartClient(detector, f.ev.Region()); err != nil {
		t.Fatal(err)
	}
	// The restarted client re-detects the co-located evader immediately
	// and heartbeats resume.
	f.k.RunFor(200 * unit)
	f.assertPathReachesEvader(t)
	id, err := f.net.Find(f.tiling.RegionAt(7, 7))
	if err != nil {
		t.Fatal(err)
	}
	f.k.RunFor(400 * unit)
	if !f.net.FindDone(id) {
		t.Fatal("find failed after detector client restart")
	}
}

// A client restarted in place starts from its initial state (§II-C.1): a
// detector that crash-stops, misses the evader's departure, and restarts in
// the same region must NOT resurrect its stale detection — otherwise its
// heartbeat refreshes keep a phantom lease alive at the old leaf and finds
// can answer a region the evader already left.
func TestRestartInPlaceClearsStaleDetection(t *testing.T) {
	f := newFixture(t, fixtureConfig{side: 8, start: 9, heartbeat: 8 * unit, tRestart: unit})
	f.k.RunFor(100 * unit)

	detector := vsa.ClientID(9) // the stationary client of the evader's region
	if !f.net.Client(detector).EvaderHere() {
		t.Fatal("detector has not detected the co-located evader; test setup broken")
	}
	oldRegion := f.ev.Region()
	f.layer.FailClient(detector)
	// The evader departs while the detector is down: the left input is lost.
	if err := f.ev.MoveTo(f.tiling.RegionAt(2, 1)); err != nil {
		t.Fatal(err)
	}
	f.k.RunFor(20 * unit)
	if err := f.layer.RestartClient(detector, oldRegion); err != nil {
		t.Fatal(err)
	}
	if f.net.Client(detector).EvaderHere() {
		t.Fatal("restarted client kept its pre-crash detection state")
	}
	// With the stale detection cleared, leases at the old leaf expire and
	// the structure converges on the evader's true region.
	f.k.RunFor(400 * unit)
	f.assertPathReachesEvader(t)
}
