package tracker

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"vinestalk/internal/cgcast"
	"vinestalk/internal/geo"
	"vinestalk/internal/hier"
	"vinestalk/internal/nethost"
	"vinestalk/internal/sim"
	"vinestalk/internal/vsa"
)

// NetHost runs the Tracker automaton on the networked host
// (internal/nethost): one goroutine per region, wall-clock timers, and the
// versioned wire codec as the message format. It plays the role the
// Network plays on the sim hosts — client algorithm, find bookkeeping,
// found deduplication — but against real concurrency: every region's
// machine and client state live on that region's node goroutine, and the
// host's own registries sit behind a mutex.
//
// The paper's delivery schedule survives the near-instant transport
// because every frame carries an absolute due time computed from the same
// ScheduleDelayIn the sim service uses, and the receiving service holds
// the frame until then.
type NetHost struct {
	h     *hier.Hierarchy
	geom  hier.Geometry
	sched Schedule
	unit  sim.Time
	delta sim.Time
	hb    *HeartbeatConfig
	batch bool
	aCfg  automatonConfig

	svc *nethost.Service

	// mu guards the host registries below, never node or automaton state.
	mu      sync.Mutex
	objAt   map[ObjectID]geo.RegionID
	findSeq FindID
	started map[FindID]sim.Time
	findObj map[FindID]ObjectID
	done    map[FindID]bool
	results map[FindID]FindResult
	onFound func(FindResult)
}

// NetConfig parameterizes a NetHost.
type NetConfig struct {
	// Geom is the measured cluster geometry (hier.MeasureGeometry).
	Geom hier.Geometry
	// Delta is δ, the client↔cluster broadcast delay.
	Delta sim.Time
	// Unit is δ+e, the per-distance-unit delay of the schedule.
	Unit sim.Time
	// Heartbeat, when positive, enables the §VII refresh extension with
	// this client re-broadcast period.
	Heartbeat sim.Time
	// Schedule overrides the default grow/shrink schedule (validated).
	Schedule *Schedule
	// Batch coalesces each node's outbound cluster messages per
	// (destination, due time) across one processing burst into single
	// KindClusterBatch wire frames — the multi-object fan-out
	// optimization. Off, every message is its own frame (the historical
	// format); batched frames from a Batch peer still decode either way.
	Batch bool
	// OnFound is invoked once per completed find (off the node goroutines'
	// critical state, but concurrently with them).
	OnFound func(FindResult)
}

// NewNetHost validates the configuration and assembles the app; wire it to
// a service with nethost.New(app, ...) and keep the returned service via
// Attach before Start.
func NewNetHost(h *hier.Hierarchy, cfg NetConfig) (*NetHost, error) {
	if cfg.Unit <= 0 || cfg.Delta <= 0 {
		return nil, fmt.Errorf("tracker: nethost needs positive delta and unit, got δ=%v unit=%v", cfg.Delta, cfg.Unit)
	}
	sched := DefaultSchedule(cfg.Geom, cfg.Unit)
	if cfg.Schedule != nil {
		sched = *cfg.Schedule
	}
	if err := sched.Validate(cfg.Geom, cfg.Unit); err != nil {
		return nil, err
	}
	nh := &NetHost{
		h:       h,
		geom:    cfg.Geom,
		sched:   sched,
		unit:    cfg.Unit,
		delta:   cfg.Delta,
		batch:   cfg.Batch,
		onFound: cfg.OnFound,
		objAt:   make(map[ObjectID]geo.RegionID),
		started: make(map[FindID]sim.Time),
		findObj: make(map[FindID]ObjectID),
		done:    make(map[FindID]bool),
		results: make(map[FindID]FindResult),
	}
	if cfg.Heartbeat > 0 {
		nh.hb = &HeartbeatConfig{
			Period: cfg.Heartbeat,
			leases: computeLeases(h, cfg.Geom, sched, cfg.Unit, cfg.Heartbeat),
		}
	}
	nh.aCfg = automatonConfig{
		h: h, geom: cfg.Geom, sched: sched, unit: cfg.Unit, hb: nh.hb,
	}
	return nh, nil
}

// Attach binds the hosting service. Call after nethost.New and before
// Start (find and move inputs need it to reach node goroutines).
func (nh *NetHost) Attach(svc *nethost.Service) { nh.svc = svc }

// Hierarchy returns the cluster hierarchy.
func (nh *NetHost) Hierarchy() *hier.Hierarchy { return nh.h }

// netRegionState is the per-node client state (Node.State): the §IV-A
// client algorithm's detection flags for the region's co-located sensor,
// plus — under NetConfig.Batch — the burst's outbound frame buffer.
// Node-goroutine only.
type netRegionState struct {
	here map[ObjectID]bool

	// pend buffers this burst's outbound cluster messages per
	// (destination, due) bucket; pendIdx indexes buckets for O(1) append
	// while pend keeps insertion order, so flushes are deterministic.
	pend    []*pendBatch
	pendIdx map[pendKey]int
}

// pendKey buckets outbound messages that can share one wire frame.
type pendKey struct {
	to  geo.RegionID
	due sim.Time
}

// pendBatch is one frame under construction.
type pendBatch struct {
	to   geo.RegionID
	due  sim.Time
	hops int
	msgs []ClusterMsgFrame
}

func regionState(n *nethost.Node) *netRegionState {
	st, ok := n.State.(*netRegionState)
	if !ok {
		st = &netRegionState{here: make(map[ObjectID]bool)}
		n.State = st
	}
	return st
}

// addPending buffers one encoded cluster message for the burst's flush.
func (st *netRegionState) addPending(to geo.RegionID, due sim.Time, hops int, m ClusterMsgFrame) {
	key := pendKey{to: to, due: due}
	if st.pendIdx == nil {
		st.pendIdx = make(map[pendKey]int)
	}
	if i, ok := st.pendIdx[key]; ok {
		st.pend[i].msgs = append(st.pend[i].msgs, m)
		return
	}
	st.pendIdx[key] = len(st.pend)
	st.pend = append(st.pend, &pendBatch{to: to, due: due, hops: hops, msgs: []ClusterMsgFrame{m}})
}

// --- nethost.App ---

var _ nethost.App = (*NetHost)(nil)

// NewAutomaton implements nethost.App: each region node gets its own full
// automaton instance in initial state, wired to the node as its host. Only
// the processes headed at that region are ever driven; the instance-per-
// region split is what a real deployment has, and a node restart therefore
// comes back with exactly the §II-C.2 initial state.
func (nh *NetHost) NewAutomaton(u geo.RegionID, host vsa.Host) vsa.Automaton {
	a := buildAutomaton(nh.aCfg)
	a.host = host
	return a
}

// OnStart implements nethost.App: the region's co-located client re-runs
// its GPS detection, exactly like Client.GPSUpdate after a restart — if
// the tracked object sits here, broadcast a fresh detection and start the
// heartbeat. This is what lets a killed-and-restarted evader region
// re-seed the tracking structure.
func (nh *NetHost) OnStart(n *nethost.Node) {
	st := regionState(n)
	nh.mu.Lock()
	var present []ObjectID
	for obj, at := range nh.objAt {
		if at == n.Region() {
			present = append(present, obj)
		}
	}
	nh.mu.Unlock()
	for _, obj := range present {
		st.here[obj] = true
		nh.clientSend(n, obj, KindGrow, nil)
		nh.armRefresh(n, obj)
	}
}

// HandleEffect implements nethost.App: automaton effects become wire
// frames. Accounting notes are host-internal on the sim substrate and
// have no networked counterpart.
func (nh *NetHost) HandleEffect(n *nethost.Node, effect any) {
	switch e := effect.(type) {
	case sendEffect:
		to := nh.h.Head(e.To)
		payload, err := EncodeClusterMsg(e.From, n.Region(), nh.h.Level(e.To), e.Obj, e.Kind, e.Body)
		if err != nil {
			return
		}
		due := n.Now() + cgcast.ScheduleDelayIn(nh.h, nh.geom, nh.unit, e.From, e.To)
		if nh.batch {
			// Buffered until the burst's OnIdle: every same-(destination,
			// round) message of this burst rides one frame.
			regionState(n).addPending(to, due, nh.hops(n.Region(), to), ClusterMsgFrame{Kind: e.Kind, Payload: payload})
			return
		}
		n.Send(to, due, e.Kind, nh.hops(n.Region(), to), payload)
	case foundEffect:
		u := nh.h.Head(e.From)
		payload, err := EncodeClusterMsg(e.From, u, 0, e.Obj, KindFound, e.Payloads)
		if err != nil {
			return
		}
		due := n.Now() + nh.unit
		for _, target := range append([]geo.RegionID{u}, nh.h.Tiling().Neighbors(u)...) {
			n.Send(target, due, KindFound, nh.hops(u, target), payload)
		}
	}
}

// OnIdle implements nethost.App: flush the burst's buffered outbound
// messages. Multi-message buckets become one KindClusterBatch frame;
// singletons keep the plain per-message format (no container overhead, and
// peers without batch support still decode them).
func (nh *NetHost) OnIdle(n *nethost.Node) {
	if !nh.batch {
		return
	}
	st, ok := n.State.(*netRegionState)
	if !ok || len(st.pend) == 0 {
		return
	}
	for _, b := range st.pend {
		if len(b.msgs) == 1 {
			n.Send(b.to, b.due, b.msgs[0].Kind, b.hops, b.msgs[0].Payload)
			continue
		}
		payload, err := EncodeClusterBatch(b.msgs)
		if err != nil {
			continue
		}
		n.Send(b.to, b.due, KindClusterBatch, b.hops, payload)
	}
	st.pend = nil
	st.pendIdx = nil
}

// DeliverFrame implements nethost.App: decode one due frame and feed it to
// the region's machine — or, for found broadcasts, to the region's client.
// The bytes are untrusted; a frame that fails the wire codec is dropped.
// Batched frames unpack into their member messages, each delivered exactly
// as if it had arrived alone.
func (nh *NetHost) DeliverFrame(n *nethost.Node, kind string, payload []byte) {
	if kind == KindClusterBatch {
		msgs, err := DecodeClusterBatch(payload)
		if err != nil {
			return
		}
		for _, m := range msgs {
			if m.Kind == KindClusterBatch {
				// No nested batches: the encoder never produces them, so a
				// frame that contains one is hostile.
				return
			}
			nh.DeliverFrame(n, m.Kind, m.Payload)
		}
		return
	}
	level, del, err := DecodeClusterMsg(kind, payload)
	if err != nil {
		return
	}
	if kind == KindFound {
		env := del.Payload.(envelope)
		st := regionState(n)
		if !st.here[env.Obj] {
			return
		}
		if ps, ok := env.Body.([]FindPayload); ok {
			for _, p := range ps {
				nh.reportFound(env.Obj, p, n.Region())
			}
		}
		return
	}
	n.Automaton().Deliver(n.Region(), level, del)
}

// hops charges the head-to-head hop distance for the ledger's hop-work
// accounting, mirroring the sim service.
func (nh *NetHost) hops(from, to geo.RegionID) int {
	if from == to {
		return 0
	}
	d := nh.h.Graph().Distance(from, to)
	if d < 0 {
		d = 0
	}
	return d
}

// clientSend broadcasts a client message to the node's region's level-0
// cluster (cgcast ClientToCluster over the wire): due δ from now, from
// NoCluster so the receiving process treats it as a local detection.
func (nh *NetHost) clientSend(n *nethost.Node, obj ObjectID, kind string, body any) {
	c0 := nh.h.Cluster(n.Region(), 0)
	if c0 == hier.NoCluster {
		return
	}
	head := nh.h.Head(c0)
	payload, err := EncodeClusterMsg(hier.NoCluster, n.Region(), 0, obj, kind, body)
	if err != nil {
		return
	}
	n.Send(head, n.Now()+nh.delta, kind, nh.hops(n.Region(), head), payload)
}

// armRefresh starts the §VII heartbeat loop on the node: every period,
// while the object is still detected here, re-broadcast a refresh. The
// loop is node-local state — it dies with the node and OnStart revives it.
func (nh *NetHost) armRefresh(n *nethost.Node, obj ObjectID) {
	if nh.hb == nil {
		return
	}
	n.RunAt(n.Now()+nh.hb.Period, func(n *nethost.Node) {
		st := regionState(n)
		if !st.here[obj] {
			return
		}
		nh.clientSend(n, obj, KindRefresh, 0)
		nh.armRefresh(n, obj)
	})
}

// --- external inputs ---

// PlaceObject introduces (or teleports) a tracked object at region at:
// the region's client detects it and grows the initial path.
func (nh *NetHost) PlaceObject(obj ObjectID, at geo.RegionID) error {
	return nh.moveObject(obj, geo.NoRegion, at)
}

// MoveObject is the GPS transition input: the object leaves from (its
// client broadcasts shrink) and enters to (grow). It mirrors the sim
// evader's Sink events.
func (nh *NetHost) MoveObject(obj ObjectID, from, to geo.RegionID) error {
	return nh.moveObject(obj, from, to)
}

func (nh *NetHost) moveObject(obj ObjectID, from, to geo.RegionID) error {
	nh.mu.Lock()
	nh.objAt[obj] = to
	nh.mu.Unlock()
	if from != geo.NoRegion && from != to {
		// A dead origin region simply misses the left input — its restart
		// resets detection anyway (OnStart only re-detects present objects).
		_ = nh.svc.Inject(from, func(n *nethost.Node) {
			st := regionState(n)
			if !st.here[obj] {
				return
			}
			st.here[obj] = false
			nh.clientSend(n, obj, KindShrink, nil)
		})
	}
	err := nh.svc.Inject(to, func(n *nethost.Node) {
		st := regionState(n)
		st.here[obj] = true
		nh.clientSend(n, obj, KindGrow, nil)
		nh.armRefresh(n, obj)
	})
	if errors.Is(err, nethost.ErrRegionDown) {
		// The object entered a crashed region: detection is lost until the
		// region restarts, when OnStart re-detects it from objAt.
		return nil
	}
	return err
}

// Find issues a find input at a client in region origin for the default
// object; the found output arrives through the OnFound callback.
func (nh *NetHost) Find(origin geo.RegionID) (FindID, error) {
	return nh.FindObject(origin, DefaultObject)
}

// FindObject is Find for one of several tracked objects.
func (nh *NetHost) FindObject(origin geo.RegionID, obj ObjectID) (FindID, error) {
	nh.mu.Lock()
	nh.findSeq++
	id := nh.findSeq
	nh.started[id] = nh.svc.Now()
	nh.findObj[id] = obj
	nh.mu.Unlock()
	p := FindPayload{ID: id, Origin: origin}
	err := nh.svc.Inject(origin, func(n *nethost.Node) {
		nh.clientSend(n, obj, KindFind, []FindPayload{p})
	})
	if err != nil {
		nh.mu.Lock()
		delete(nh.started, id)
		delete(nh.findObj, id)
		nh.mu.Unlock()
		return 0, err
	}
	return id, nil
}

// FindDone reports whether a found output for the find has occurred.
func (nh *NetHost) FindDone(id FindID) bool {
	nh.mu.Lock()
	defer nh.mu.Unlock()
	return nh.done[id]
}

// FindResultFor returns the recorded found output for a completed find.
func (nh *NetHost) FindResultFor(id FindID) (FindResult, bool) {
	nh.mu.Lock()
	defer nh.mu.Unlock()
	r, ok := nh.results[id]
	return r, ok
}

// reportFound deduplicates found outputs per find id (the broadcast
// reaches the evader's region and its neighbors) and records the
// find-completion latency in the service ledger.
func (nh *NetHost) reportFound(obj ObjectID, p FindPayload, at geo.RegionID) {
	nh.mu.Lock()
	if nh.done[p.ID] {
		nh.mu.Unlock()
		return
	}
	nh.done[p.ID] = true
	res := FindResult{ID: p.ID, Object: obj, Origin: p.Origin, FoundAt: at}
	nh.results[p.ID] = res
	start, ok := nh.started[p.ID]
	cb := nh.onFound
	nh.mu.Unlock()
	if ok {
		nh.svc.RecordLatency("net/find", time.Duration(nh.svc.Now()-start))
	}
	if cb != nil {
		cb(res)
	}
}

// ClusterPointers snapshots (c, p, nbrptup, nbrptdown) of one cluster's
// process for the default object, by querying the head region's node on
// its own goroutine (the only place the automaton may be read).
func (nh *NetHost) ClusterPointers(c hier.ClusterID) (cp, pp, up, down hier.ClusterID, err error) {
	return nh.ClusterPointersFor(c, DefaultObject)
}

// ClusterPointersFor is ClusterPointers for one tracked object.
func (nh *NetHost) ClusterPointersFor(c hier.ClusterID, obj ObjectID) (cp, pp, up, down hier.ClusterID, err error) {
	ch := make(chan [4]hier.ClusterID, 1)
	err = nh.svc.Inject(nh.h.Head(c), func(n *nethost.Node) {
		a := n.Automaton().(*Automaton)
		c0, p0, u0, d0 := a.procs[c].PointersFor(obj)
		ch <- [4]hier.ClusterID{c0, p0, u0, d0}
	})
	if err != nil {
		return hier.NoCluster, hier.NoCluster, hier.NoCluster, hier.NoCluster, err
	}
	select {
	case v := <-ch:
		return v[0], v[1], v[2], v[3], nil
	case <-time.After(10 * time.Second):
		return hier.NoCluster, hier.NoCluster, hier.NoCluster, hier.NoCluster,
			fmt.Errorf("tracker: pointer snapshot of %v timed out", c)
	}
}
