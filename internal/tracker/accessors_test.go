package tracker

import (
	"testing"

	"vinestalk/internal/geo"
	"vinestalk/internal/hier"
	"vinestalk/internal/trace"
	"vinestalk/internal/vsa"
)

func TestNetworkAndClientAccessors(t *testing.T) {
	f := newFixture(t, fixtureConfig{side: 4, start: 0, alwaysUp: true,
		netOptions: []Option{WithTracer(trace.New(64))}})
	f.settle()

	if f.net.Hierarchy() != f.h {
		t.Error("Hierarchy accessor mismatch")
	}
	if f.net.Kernel() != f.k {
		t.Error("Kernel accessor mismatch")
	}
	if len(f.net.Schedule().G) != f.h.MaxLevel() {
		t.Errorf("Schedule has %d levels, want %d", len(f.net.Schedule().G), f.h.MaxLevel())
	}
	if f.net.Process(hier.NoCluster) != nil {
		t.Error("Process(NoCluster) should be nil")
	}
	if f.net.Process(hier.ClusterID(10_000)) != nil {
		t.Error("Process(out of range) should be nil")
	}
	if f.net.BackupProcess(hier.NoCluster) != nil {
		t.Error("BackupProcess(NoCluster) should be nil")
	}
	if f.net.BackupProcess(0) != nil {
		t.Error("BackupProcess without replication should be nil")
	}

	c := f.net.Client(vsa.ClientID(0))
	if c == nil {
		t.Fatal("Client(0) missing")
	}
	if c.ID() != 0 || c.Region() != geo.RegionID(0) {
		t.Errorf("client identity = (%v, %v)", c.ID(), c.Region())
	}
	if !c.EvaderHere() || !c.ObjectHere(DefaultObject) {
		t.Error("client at evader region should report detection")
	}
	if c.ObjectHere(5) {
		t.Error("client reports detection for untracked object")
	}
	if f.net.Client(vsa.ClientID(999)) != nil {
		t.Error("Client(unknown) should be nil")
	}

	id, err := f.net.Find(geo.RegionID(15))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.net.FindIssued(id); !ok {
		t.Error("FindIssued lost the find's start time")
	}
	if _, ok := f.net.FindIssued(FindID(12345)); ok {
		t.Error("FindIssued invented a start time")
	}
	f.settle()

	// HandleEvaderEvent routes a raw GPS input (the legacy single-object
	// entry point).
	f.net.HandleEvaderEvent(f.ev.Region(), true)
	f.settle()

	// The automaton ignores payloads that are not deliveries and levels a
	// region does not host.
	pr := f.net.Process(f.h.Cluster(0, 0))
	before, _, _, _ := pr.Pointers()
	f.net.Automaton().Deliver(pr.Region(), 0, "not a delivery")
	f.net.Automaton().Deliver(pr.Region(), 99, "nothing at this level")
	after, _, _, _ := pr.Pointers()
	if before != after {
		t.Error("garbage delivery mutated process state")
	}
	if pr.Cluster() != f.h.Cluster(0, 0) || pr.Level() != 0 {
		t.Error("process identity accessors wrong")
	}
}

func TestFindErrorsWithoutClients(t *testing.T) {
	f := newFixture(t, fixtureConfig{side: 4, start: 0, alwaysUp: true})
	f.settle()
	// Empty a region of clients; a find input needs an alive client there.
	if err := f.layer.MoveClient(vsa.ClientID(15), geo.RegionID(14)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.net.Find(geo.RegionID(15)); err == nil {
		t.Fatal("find accepted at a clientless region")
	}
}
