package tracker

import (
	"bytes"
	"testing"

	"vinestalk/internal/geo"
)

// encTestRow hand-builds one v2 object row exercising the span walker:
// armed-timer deadlines and pending-find lists are present exactly when
// their flag bits say so.
func encTestRow(obj uint32, deadlines []uint64, pending [][2]uint32) []byte {
	var b []byte
	b = appendU32(b, obj)
	for i := 0; i < 4; i++ {
		b = appendU32(b, obj*10+uint32(i)) // pointers: arbitrary but distinct
	}
	var flags byte
	for i := range deadlines {
		flags |= 1 << i
	}
	if len(pending) > 0 {
		flags |= encFlagPending
	}
	b = append(b, flags)
	for _, d := range deadlines {
		b = append(b, byte(d>>56), byte(d>>48), byte(d>>40), byte(d>>32),
			byte(d>>24), byte(d>>16), byte(d>>8), byte(d))
	}
	if len(pending) > 0 {
		b = appendU32(b, uint32(len(pending)))
		for _, p := range pending {
			b = append(b, 0, 0, 0, 0)
			b = appendU32(b, p[0])
			b = appendU32(b, p[1])
		}
	}
	return b
}

// encTestRegion assembles a v2 encoding from per-level row lists.
func encTestRegion(levels []uint16, rows [][][]byte) []byte {
	var b []byte
	b = appendU16(b, regionStateVersion)
	b = appendU16(b, uint16(len(levels)))
	for i, lv := range levels {
		b = appendU16(b, lv)
		b = appendU32(b, uint32(len(rows[i])))
		for _, r := range rows[i] {
			b = append(b, r...)
		}
	}
	return b
}

// Merging shard-local encodings must interleave rows by object id under the
// shared level skeleton, byte for byte — including rows carrying armed
// timers and pending finds, whose spans the walker must skip exactly.
func TestMergeRegionEncodings(t *testing.T) {
	levels := []uint16{0, 2}
	r1 := encTestRow(1, nil, nil)
	r2 := encTestRow(2, []uint64{77}, nil)
	r3 := encTestRow(3, []uint64{5, 9}, [][2]uint32{{41, 12}, {42, 200}})
	r9 := encTestRow(9, nil, [][2]uint32{{7, 3}})

	a := encTestRegion(levels, [][][]byte{{r1, r3}, {r9}})
	b := encTestRegion(levels, [][][]byte{{r2}, {}})
	want := encTestRegion(levels, [][][]byte{{r1, r2, r3}, {r9}})

	got, err := MergeRegionEncodings(a, b)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged encoding differs:\n got %x\nwant %x", got, want)
	}

	// Merging one input is the identity; merging with an empty-level input
	// is too.
	if got, err := MergeRegionEncodings(a); err != nil || !bytes.Equal(got, a) {
		t.Fatalf("single-input merge not identity: %x err=%v", got, err)
	}
	empty := encTestRegion(levels, [][][]byte{{}, {}})
	if got, err := MergeRegionEncodings(a, empty); err != nil || !bytes.Equal(got, a) {
		t.Fatalf("empty-input merge not identity: %x err=%v", got, err)
	}

	// All-nil means the region hosts nothing anywhere.
	if got, err := MergeRegionEncodings(nil, nil); err != nil || got != nil {
		t.Fatalf("all-nil merge = %x, %v; want nil, nil", got, err)
	}
}

func TestMergeRegionEncodingsRejectsBadInput(t *testing.T) {
	levels := []uint16{0}
	a := encTestRegion(levels, [][][]byte{{encTestRow(1, nil, nil)}})

	cases := map[string][][]byte{
		"duplicate object": {a, encTestRegion(levels, [][][]byte{{encTestRow(1, nil, nil)}})},
		"mixed nil":        {a, nil},
		"level mismatch":   {a, encTestRegion([]uint16{1}, [][][]byte{{}})},
		"level count":      {a, encTestRegion([]uint16{0, 1}, [][][]byte{{}, {}})},
		"bad version":      {append(appendU16(nil, 1), a[2:]...)},
		"trailing bytes":   {append(append([]byte(nil), a...), 0xFF)},
		"truncated":        {a[:len(a)-3]},
	}
	for name, encs := range cases {
		if _, err := MergeRegionEncodings(encs...); err == nil {
			t.Errorf("%s: merge accepted bad input", name)
		}
	}

	// Reserved flag bits are a decoder error, not silently skipped bytes.
	row := encTestRow(4, nil, nil)
	row[len(row)-1] |= 0x40
	if _, err := MergeRegionEncodings(encTestRegion(levels, [][][]byte{{row}})); err == nil {
		t.Error("reserved flags: merge accepted bad input")
	}

	// Out-of-order rows violate the canonical form.
	unsorted := encTestRegion(levels, [][][]byte{{encTestRow(5, nil, nil), encTestRow(2, nil, nil)}})
	if _, err := MergeRegionEncodings(unsorted); err == nil {
		t.Error("unsorted rows: merge accepted bad input")
	}
}

// A real automaton's encoding must round-trip through the parser: merge of
// the single live encoding is the identity on actual protocol state.
func TestMergeRegionEncodingsOnLiveState(t *testing.T) {
	f := newFixture(t, fixtureConfig{side: 4, start: 5, alwaysUp: true})
	f.settle()
	aut := f.net.Automaton()
	merged := 0
	for u := 0; u < f.tiling.NumRegions(); u++ {
		enc := aut.EncodeRegion(geo.RegionID(u))
		got, err := MergeRegionEncodings(enc)
		if err != nil {
			t.Fatalf("region %d: %v", u, err)
		}
		if !bytes.Equal(got, enc) {
			t.Fatalf("region %d: identity merge changed bytes", u)
		}
		if enc != nil {
			merged++
		}
	}
	if merged == 0 {
		t.Fatal("no region produced an encoding")
	}
}
