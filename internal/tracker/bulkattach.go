package tracker

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"sync"

	"vinestalk/internal/cgcast"
	"vinestalk/internal/geo"
	"vinestalk/internal/metrics"
	"vinestalk/internal/sim"
)

// Bulk attach (§VII multiple objects at production fan-out).
//
// Sequentially attaching k objects runs k full grow cascades to the root —
// k·O(height) protocol messages and k log n table inserts — even when many
// objects start in the same region and therefore build the *same* tracking
// path. Theorem 4.9's independence property licenses a collapse: the
// settled post-attach state of an object is a deterministic function of its
// start region alone (during a pure attach no same-level neighbor is ever
// on the object's own path, so every timer fire picks the hierarchy
// parent), and settled state vectors carry no armed timers and no pending
// finds — they are pure pointer tuples. AttachObjects therefore groups the
// attach targets by start region, runs the real grow cascade once per
// distinct (region → root) path through the normal event machinery for one
// leader object, and splices every other object of the group into the
// leader's settled footprint: one binary-search-free sorted batch merge per
// affected process table, client detection flags planted directly, and the
// leader's ledger delta replayed ×(group−1) so per-message "proto/"
// accounting stays identical to sequential attach. Under C-gcast batching
// the wire frames are *not* multiplied — attach traffic scales with
// distinct path edges, not with objects, which is the perf claim — while
// under plain frame accounting (CountFrames) they are, keeping the ledger
// byte-comparable to k sequential attaches.

// AttachSpec names one object of a bulk attach.
type AttachSpec struct {
	// Obj is the object id; it must not already be attached.
	Obj ObjectID
	// At is the object's start region.
	At geo.RegionID
	// Where is the position hook registered for the object (what
	// Network.AttachObject takes): it must report the object's current
	// region. Nil defaults to a fixed closure over At — only correct for
	// objects that never move, so callers driving the object through an
	// evader must supply its Region method.
	Where func() geo.RegionID
}

// ObjectSendNote observes one cluster-to-cluster protocol send on behalf of
// an object: the object's current region (whose shard owns its cascade work
// under object-sharded scheduling), the destination cluster's head region,
// and the delivery due time. core wires this to sim.Router.NoteObject.
type ObjectSendNote func(obj ObjectID, cur, dst geo.RegionID, due sim.Time)

type objNoteOption struct{ fn ObjectSendNote }

func (o objNoteOption) apply(n *Network) { n.objNote = o.fn }

// WithObjectSendNote registers an observer for per-object cascade sends —
// the hook that keys tracker work by the object's current head-region shard
// (sim.Router.NoteObject records the per-shard load vector and the
// head-region contention counter from it). Accounting only: protocol state,
// schedules, and the ledger are unchanged.
func WithObjectSendNote(fn ObjectSendNote) Option { return objNoteOption{fn: fn} }

type spliceShardOption struct {
	shards  int
	shardOf func(geo.RegionID) int
}

func (o spliceShardOption) apply(n *Network) {
	n.spliceShards = o.shards
	n.spliceShardOf = o.shardOf
}

// WithSpliceSharding runs AttachObjects' table splices in parallel, one
// goroutine per shard of the given geographic partition. Every splice
// touches only its own process's table and all of a process's splices stay
// on the shard owning its head region (in deterministic order), so the
// resulting tables are byte-identical to the sequential splice at any shard
// count — this is Theorem 4.9's object independence graduating to real
// parallelism on the attach path.
func WithSpliceSharding(shards int, shardOf func(geo.RegionID) int) Option {
	return spliceShardOption{shards: shards, shardOf: shardOf}
}

// bulkSettleBudget bounds the kernel drain after each leader cascade
// (matching core.Service.Settle's livelock guard).
const bulkSettleBudget = 20_000_000

// spliceJob plants one group's follower rows into one process table,
// cloned from the leader's settled state vector there.
type spliceJob struct {
	pr   *Process
	tmpl *objState
	objs []ObjectID // the group's followers, sorted ascending
}

// AttachObjects starts tracking every object in specs in one bulk pass.
// The post-attach automaton state (and every region's canonical encoding)
// is byte-identical to attaching the objects one at a time and settling;
// see the package comment above for the argument. It runs the simulation
// kernel internally — once per distinct start region — so it must be
// called at a move-quiescent instant, like the sequential attach+settle
// sequence it replaces. Not available with heartbeats (leases keep the
// queue busy, so "settled leader state" is ill-defined) or under emulation
// (region state lives in the emulating nodes' replicas, which a host-side
// splice would bypass).
func (n *Network) AttachObjects(specs []AttachSpec) error {
	if len(specs) == 0 {
		return nil
	}
	if n.emulHost != nil {
		return fmt.Errorf("tracker: bulk attach is unavailable under emulation")
	}
	if n.hb != nil {
		return fmt.Errorf("tracker: bulk attach is unavailable with heartbeats enabled")
	}
	tl := n.h.Tiling()
	seen := make(map[ObjectID]bool, len(specs))
	for _, sp := range specs {
		if !tl.Contains(sp.At) {
			return fmt.Errorf("tracker: bulk attach: region %v outside tiling", sp.At)
		}
		if seen[sp.Obj] {
			return fmt.Errorf("tracker: bulk attach: duplicate object %v", sp.Obj)
		}
		seen[sp.Obj] = true
		if _, dup := n.evaderAt[sp.Obj]; dup {
			return fmt.Errorf("tracker: object %v already attached", sp.Obj)
		}
	}

	// Group by start region; within a group the smallest id leads.
	sorted := append([]AttachSpec(nil), specs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].At != sorted[j].At {
			return sorted[i].At < sorted[j].At
		}
		return sorted[i].Obj < sorted[j].Obj
	})

	ledger := n.cg.Ledger()
	var jobs []spliceJob
	for start := 0; start < len(sorted); {
		end := start
		for end < len(sorted) && sorted[end].At == sorted[start].At {
			end++
		}
		group := sorted[start:end]
		start = end
		u := group[0].At
		leader := group[0].Obj

		var before metrics.Snapshot
		if ledger != nil {
			before = ledger.Snapshot()
		}
		// The leader's attach is the real thing: GPS move input to the
		// region's clients, grow cascade through the normal event
		// machinery, kernel drained to settlement.
		n.handleObjectEvent(leader, u, true)
		if _, err := n.k.RunLimited(bulkSettleBudget); err != nil {
			return fmt.Errorf("tracker: bulk attach cascade at region %v: %w", u, err)
		}

		if len(group) > 1 {
			followers := make([]ObjectID, 0, len(group)-1)
			for _, sp := range group[1:] {
				followers = append(followers, sp.Obj)
			}
			if ledger != nil {
				diff := ledger.Snapshot().Sub(before)
				if n.cg.Batching() {
					// Batched frames are shared across the group by
					// construction: one frame per distinct path edge per
					// round, however many objects ride it.
					delete(diff.MsgCount, cgcast.FrameKind)
					delete(diff.HopWork, cgcast.FrameKind)
					delete(diff.Delivered, cgcast.FrameKind)
					delete(diff.Drops, cgcast.FrameKind)
				}
				ledger.AddSnapshot(diff, int64(len(followers)))
			}
			// The leader's settled footprint — every process (primary or
			// backup replica) holding a state vector for it — becomes the
			// group's splice template.
			collect := func(pr *Process) error {
				if pr == nil {
					return nil
				}
				st := pr.objs.get(leader)
				if st == nil {
					return nil
				}
				if st.timer.Armed() || st.nbrTimeout.Armed() ||
					st.lease.Armed() || st.nbrLease.Armed() || len(st.pending) > 0 {
					return fmt.Errorf("tracker: bulk attach: leader %v not settled at cluster %v", leader, pr.id)
				}
				jobs = append(jobs, spliceJob{pr: pr, tmpl: st, objs: followers})
				return nil
			}
			for _, pr := range n.aut.procs {
				if err := collect(pr); err != nil {
					return err
				}
			}
			for _, pr := range n.aut.backups {
				if err := collect(pr); err != nil {
					return err
				}
			}
			// Plant follower detection state exactly where the leader's GPS
			// input left its own: clients that detected the leader detect
			// the followers, and each follower opens its first move epoch.
			for _, id := range n.cg.Layer().ClientsIn(u) {
				c, ok := n.clients[id]
				if !ok || !c.evaderHere[leader] {
					continue
				}
				for _, obj := range followers {
					c.evaderHere[obj] = true
				}
			}
			for _, obj := range followers {
				n.moveEpochs[obj]++
				n.objRegion[obj] = u
			}
		}
		// Register position hooks — the same point sequential AddObject
		// registers them (after the GPS input, before further kernel runs).
		for _, sp := range group {
			where := sp.Where
			if where == nil {
				at := sp.At
				where = func() geo.RegionID { return at }
			}
			n.evaderAt[sp.Obj] = where
		}
	}

	n.runSplices(jobs)
	return nil
}

// procSplice is every group's splice jobs for one process table, coalesced
// so the table is merged exactly once however many groups touch it. The
// per-process coalescing is what keeps the splice linear: an upper-level
// process (the root above all) collects jobs from every group under it, and
// merging those batches one group at a time would walk its growing table
// once per group — Θ(objects × groups) pointer chases. One sorted merge of
// the combined rows is Θ(objects) there, and the sorted-unique table it
// produces is identical whatever order the rows arrived in.
type procSplice struct {
	pr   *Process
	jobs []spliceJob
}

// runSplices executes the queued batch merges — one combined merge per
// process — fanned out across the splice partition's shards when one is
// configured. Each merge touches only its own process's table and a
// process maps to exactly one shard, so table contents are independent of
// goroutine interleaving.
func (n *Network) runSplices(jobs []spliceJob) {
	order := make(map[*Process]int)
	var procs []procSplice
	for _, j := range jobs {
		i, ok := order[j.pr]
		if !ok {
			i = len(procs)
			order[j.pr] = i
			procs = append(procs, procSplice{pr: j.pr})
		}
		procs[i].jobs = append(procs[i].jobs, j)
	}
	if n.spliceShardOf == nil || n.spliceShards <= 1 {
		for _, p := range procs {
			p.run()
		}
		return
	}
	byShard := make([][]procSplice, n.spliceShards)
	for _, p := range procs {
		s := n.spliceShardOf(p.pr.region)
		if s < 0 || s >= n.spliceShards {
			s = 0
		}
		byShard[s] = append(byShard[s], p)
	}
	var wg sync.WaitGroup
	for _, shardProcs := range byShard {
		if len(shardProcs) == 0 {
			continue
		}
		wg.Add(1)
		go func(ps []procSplice) {
			defer wg.Done()
			for _, p := range ps {
				p.run()
			}
		}(shardProcs)
	}
	wg.Wait()
}

// run clones each job's leader vector once per follower and merges all the
// rows into the process table in a single pass. The templates are settled —
// no armed timers, no pending finds (asserted at collection) — so the
// clone copies only the pointer tuple; timer slots start unarmed, exactly
// as a sequential attach would have left them.
func (p procSplice) run() {
	total := 0
	for _, j := range p.jobs {
		total += len(j.objs)
	}
	arena := make([]objState, total) // one allocation for the whole table delta
	rows := make([]*objState, 0, total)
	for _, j := range p.jobs {
		for _, obj := range j.objs {
			st := &arena[len(rows)]
			*st = objState{
				pr:        p.pr,
				obj:       obj,
				c:         j.tmpl.c,
				p:         j.tmpl.p,
				nbrptup:   j.tmpl.nbrptup,
				nbrptdown: j.tmpl.nbrptdown,
			}
			st.timer = timerSlot{st: st, kind: timerGrowShrink, at: sim.Forever}
			st.nbrTimeout = timerSlot{st: st, kind: timerNbrTimeout, at: sim.Forever}
			st.lease = timerSlot{st: st, kind: timerLease, at: sim.Forever}
			st.nbrLease = timerSlot{st: st, kind: timerNbrLease, at: sim.Forever}
			rows = append(rows, st)
		}
	}
	slices.SortFunc(rows, func(a, b *objState) int { return cmp.Compare(a.obj, b.obj) })
	p.pr.objs.insertBatch(rows)
}
