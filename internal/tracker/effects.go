package tracker

import (
	"vinestalk/internal/cgcast"
	"vinestalk/internal/hier"
	"vinestalk/internal/trace"
)

// The Tracker automaton communicates with its substrate exclusively
// through self-contained effect values handed to vsa.Host.Emit. The
// oracle host executes each effect synchronously at emission (preserving
// the exact call ordering of the pre-refactor direct-call design); the
// emulation host collects a step's effects as emul outputs and executes
// the leader's copy once at commit time.

// sendEffect transmits a protocol message from a cluster process.
type sendEffect struct {
	From   hier.ClusterID
	Backup bool // emitted by the alternate-head replica (§VII quorum)
	Obj    ObjectID
	To     hier.ClusterID
	Kind   string
	Body   any
}

// foundEffect broadcasts found from a level-0 cluster to the clients in
// its own and neighboring regions.
type foundEffect struct {
	From     hier.ClusterID
	Backup   bool
	Obj      ObjectID
	Payloads []FindPayload
}

// recvNoteEffect accounts a C-gcast delivery: the in-transit registry
// entry is consumed and the receipt traced.
type recvNoteEffect struct {
	To    hier.ClusterID
	Level int
	Del   cgcast.Delivery
}

// growNoteEffect counts a grow receipt for the Theorem 4.9 amortization
// instrumentation.
type growNoteEffect struct{ Level int }

// queryNoteEffect records an internal findquery action's level for the §VI
// instrumentation.
type queryNoteEffect struct{ Level int }

// execEffect performs one automaton effect against the live network
// substrate. Both hosts funnel through here — the oracle at emission, the
// emulator at leader commit.
func (n *Network) execEffect(eff any) {
	switch e := eff.(type) {
	case sendEffect:
		n.execSend(e)
	case foundEffect:
		n.execFound(e)
	case recvNoteEffect:
		n.execRecv(e)
	case growNoteEffect:
		n.noteGrow(e.Level)
	case queryNoteEffect:
		n.noteFindQuery(e.Level)
	}
}

// execSend transmits a protocol message between cluster processes, keeping
// the in-transit registry consistent for the checker. A backup replica's
// sends are suppressed while the primary head's VSA is alive (its state
// still evolves identically, since both replicas consume the same
// duplicated message stream).
func (n *Network) execSend(e sendEffect) {
	src := n.h.Head(e.From)
	if e.Backup {
		if n.cg.Layer().Alive(src) {
			return // primary speaks for the cluster
		}
		src = n.h.AltHead(e.From)
	}
	key := Transit{Obj: e.Obj, Kind: e.Kind, From: e.From, To: e.To}
	copies := n.cg.Copies(e.To)
	n.inflight[key] += copies
	if err := n.cg.ClusterToClusterFrom(src, e.From, e.To, e.Kind, envelope{Obj: e.Obj, Body: e.Body}); err != nil {
		n.inflight[key] -= copies
		return
	}
	if n.objNote != nil {
		// Key the cascade delivery by the object's current head region
		// (whose shard owns this object's work under object-sharded
		// scheduling) and the destination round it lands in.
		n.objNote(e.Obj, n.objRegion[e.Obj], n.h.Head(e.To),
			n.k.Now()+n.cg.ScheduleDelay(e.From, e.To))
	}
	n.tr.Emit(trace.Event{
		At: n.k.Now(), Kind: "send", Op: n.opFor(e.Obj, e.Kind, e.Body), Obj: int32(e.Obj),
		Msg: e.Kind, From: int32(e.From), To: int32(e.To), Region: -1,
		Level: int16(n.h.Level(e.From)),
	})
}

// execFound broadcasts found from a level-0 cluster to clients in its own
// and neighboring regions.
func (n *Network) execFound(e foundEffect) {
	if e.Backup && n.cg.Layer().Alive(n.h.Head(e.From)) {
		return
	}
	_ = n.cg.ClusterToClients(e.From, KindFound, envelope{Obj: e.Obj, Body: e.Payloads})
}

// execRecv consumes the in-transit registry entry for a delivered message
// and traces the receipt.
func (n *Network) execRecv(e recvNoteEffect) {
	n.noteDelivered(e.Del, e.To)
	if n.tr.Enabled() {
		obj := int32(-1)
		var op uint64
		if env, ok := e.Del.Payload.(envelope); ok {
			obj = int32(env.Obj)
			op = n.opFor(env.Obj, e.Del.Kind, env.Body)
		}
		n.tr.Emit(trace.Event{
			At: n.k.Now(), Kind: "recv", Op: op, Obj: obj, Msg: e.Del.Kind,
			From: int32(e.Del.From), To: int32(e.To), Region: -1, Level: int16(e.Level),
		})
	}
}
