package tracker

import (
	"fmt"

	"vinestalk/internal/cgcast"
	"vinestalk/internal/emul"
	"vinestalk/internal/geo"
	"vinestalk/internal/sim"
	"vinestalk/internal/trace"
	"vinestalk/internal/vsa"
)

// emulHost runs the Tracker automaton on the replicated mobile-node
// emulator: it is simultaneously the automaton's vsa.Host and the
// emulator's emul.Program.
//
// Data path inward: a C-gcast delivery reaches emulRegionHandler.Receive,
// which submits it as an emulator input. The input is broadcast within the
// region, sequenced by the leader, and executed via Step — which decodes
// the region's replicated state into the shared Automaton instance,
// dispatches the input, and re-encodes.
//
// Data path outward: effects and timer (re)arms the automaton emits during
// a Step are collected as the Step's outputs (keeping Step a pure state
// transformer). The emulator invokes the output sink exactly once per
// output — for the leader's execution, at commit time — and only then does
// the host act on the world: protocol sends go out, host wakeup timers are
// armed. Follower replicas re-execute Step to advance their state copies;
// their outputs are discarded by the emulator.
//
// Timer wakeups are advisory: a fired host timer submits an input carrying
// the armed deadline, and Automaton.TimerFire ignores it unless the slot
// still records exactly that deadline — so stale wakeups across leader
// handoffs, checkpoint adoptions, and region restarts are harmless.
type emulHost struct {
	net *Network
	aut *Automaton
	k   *sim.Kernel
	em  *emul.Emulator

	timers  map[oracleTimerKey]*sim.Timer
	armedAt map[oracleTimerKey]sim.Time

	// collecting, while non-nil, redirects host calls into the current
	// Step's output list instead of executing them. Steps never nest (the
	// emulator commits inputs sequentially), but the pointer is
	// saved/restored around each Step regardless.
	collecting *[]emul.Output
}

// emulDeliver is the emulator input carrying one C-gcast delivery.
type emulDeliver struct {
	U     geo.RegionID
	Level int
	Msg   any
}

// emulTimerFire is the emulator input carrying one host timer wakeup. At
// is the deadline the wakeup was armed for; the automaton validates it
// against the slot's recorded deadline.
type emulTimerFire struct {
	U  geo.RegionID
	ID vsa.TimerID
	At sim.Time
}

// timerArmOut and timerClearOut are Step outputs mirroring the automaton's
// timer-slot writes; the sink applies them to the host's wakeup service at
// commit time.
type timerArmOut struct {
	U  geo.RegionID
	ID vsa.TimerID
	At sim.Time
}

type timerClearOut struct {
	U  geo.RegionID
	ID vsa.TimerID
}

func newEmulHost(n *Network, a *Automaton, delta, tRestart sim.Time) *emulHost {
	h := &emulHost{
		net:     n,
		aut:     a,
		k:       n.k,
		timers:  make(map[oracleTimerKey]*sim.Timer),
		armedAt: make(map[oracleTimerKey]sim.Time),
	}
	h.em = emul.New(n.k, n.h.Tiling(), h, delta, tRestart,
		emul.WithOutputSink(h.applyOutput),
		emul.WithRegionEvents(h.onRegionEvent),
	)
	return h
}

var (
	_ vsa.Host     = (*emulHost)(nil)
	_ emul.Program = (*emulHost)(nil)
)

// --- vsa.Host ---

func (h *emulHost) Now() sim.Time { return h.k.Now() }

func (h *emulHost) SetTimer(u geo.RegionID, id vsa.TimerID, at sim.Time) {
	if h.collecting != nil {
		*h.collecting = append(*h.collecting, emul.Output{Msg: timerArmOut{U: u, ID: id, At: at}})
		return
	}
	h.armTimer(u, id, at)
}

func (h *emulHost) ClearTimer(u geo.RegionID, id vsa.TimerID) {
	if h.collecting != nil {
		*h.collecting = append(*h.collecting, emul.Output{Msg: timerClearOut{U: u, ID: id}})
		return
	}
	h.disarmTimer(u, id)
}

func (h *emulHost) Emit(u geo.RegionID, effect any) {
	if h.collecting != nil {
		*h.collecting = append(*h.collecting, emul.Output{Msg: effect})
		return
	}
	h.net.execEffect(effect)
}

// --- emul.Program ---

func (h *emulHost) Init(u geo.RegionID) []byte {
	return h.aut.encodeInitialRegion(u)
}

func (h *emulHost) Step(state []byte, in emul.Input) (next []byte, outputs []emul.Output) {
	var outs []emul.Output
	prev := h.collecting
	h.collecting = &outs
	defer func() { h.collecting = prev }()

	var u geo.RegionID
	switch m := in.Msg.(type) {
	case emulDeliver:
		u = m.U
		if err := h.aut.DecodeRegion(u, state); err != nil {
			return state, nil
		}
		h.aut.Deliver(u, m.Level, m.Msg)
	case emulTimerFire:
		u = m.U
		if err := h.aut.DecodeRegion(u, state); err != nil {
			return state, nil
		}
		h.aut.TimerFire(u, m.ID, m.At)
	default:
		return state, nil
	}
	return h.aut.EncodeRegion(u), outs
}

// --- emulator callbacks ---

// applyOutput executes one committed leader output against the world.
func (h *emulHost) applyOutput(u geo.RegionID, out emul.Output) {
	switch m := out.Msg.(type) {
	case timerArmOut:
		h.armTimer(m.U, m.ID, m.At)
	case timerClearOut:
		h.disarmTimer(m.U, m.ID)
	default:
		h.net.execEffect(out.Msg)
	}
}

// onRegionEvent reconciles host-side state with the emulated VSA's
// lifecycle and makes the transition visible in the trace.
func (h *emulHost) onRegionEvent(ev emul.RegionEvent) {
	n := h.net
	detail := ""
	switch ev.Kind {
	case emul.RegionFailed:
		// The region's machine state died with its nodes: drop the shared
		// instance's mirror and every pending host wakeup for the region.
		h.dropRegionTimers(ev.U)
		h.aut.dropRegionState(ev.U)
		detail = "state lost with emulating nodes"
	case emul.RegionRestarted:
		// Replicas restart from the initial state; mirror that.
		h.dropRegionTimers(ev.U)
		h.aut.dropRegionState(ev.U)
		detail = fmt.Sprintf("leader %v from initial state", ev.Leader)
	case emul.LeaderChanged:
		detail = fmt.Sprintf("leader %v took over", ev.Leader)
	}
	n.tr.Emit(trace.Event{
		At: h.k.Now(), Kind: "emul", Obj: -1, Msg: ev.Kind.String(),
		From: -1, To: -1, Region: int32(ev.U), Level: -1, Detail: detail,
	})
}

// --- host timer table ---

func (h *emulHost) armTimer(u geo.RegionID, id vsa.TimerID, at sim.Time) {
	key := oracleTimerKey{u: u, id: id}
	t, ok := h.timers[key]
	if !ok {
		t = sim.NewTimer(h.k, func() {
			// Route the wakeup through the emulator as a regular input,
			// carrying the deadline it was armed for.
			armed := h.armedAt[key]
			_ = h.em.Submit(u, emulTimerFire{U: u, ID: id, At: armed})
		})
		h.timers[key] = t
	}
	h.armedAt[key] = at
	t.Set(at)
}

func (h *emulHost) disarmTimer(u geo.RegionID, id vsa.TimerID) {
	key := oracleTimerKey{u: u, id: id}
	if t, ok := h.timers[key]; ok {
		t.Clear()
	}
	delete(h.armedAt, key)
}

func (h *emulHost) dropRegionTimers(u geo.RegionID) {
	for key, t := range h.timers {
		if key.u == u {
			t.Clear()
			delete(h.armedAt, key)
		}
	}
}

// emulRegionHandler bridges the abstract VSA layer to the emulator: a
// delivery for region u becomes an emulator input. The layer is expected
// to be built always-alive in emulation mode — region liveness (failure,
// restart, leader identity) is the emulator's authority.
type emulRegionHandler struct {
	host *emulHost
	u    geo.RegionID
}

var _ vsa.VSAHandler = emulRegionHandler{}

func (rh emulRegionHandler) Receive(level int, msg any) {
	h := rh.host
	if !h.em.Alive(rh.u) {
		// The emulated VSA is down: the message dies here, exactly like a
		// delivery to a dead abstract VSA. Settle the in-transit accounting
		// so the quiescence detector does not wait on a message that can
		// never commit (a post-restart incarnation drops pre-failure
		// inputs).
		if del, ok := msg.(cgcast.Delivery); ok {
			if pr := h.aut.processAt(rh.u, level); pr != nil {
				h.net.noteDelivered(del, pr.id)
			}
		}
		return
	}
	_ = h.em.Submit(rh.u, emulDeliver{U: rh.u, Level: level, Msg: msg})
}

// Reset is a no-op: in emulation mode the abstract layer is always alive
// and all failure dynamics come from emulating-node churn.
func (rh emulRegionHandler) Reset() {}
