package tracker

import (
	"testing"

	"vinestalk/internal/cgcast"
	"vinestalk/internal/evader"
	"vinestalk/internal/geo"
	"vinestalk/internal/geocast"
	"vinestalk/internal/hier"
	"vinestalk/internal/metrics"
	"vinestalk/internal/sim"
	"vinestalk/internal/vbcast"
	"vinestalk/internal/vsa"
)

// The §VII quorum extension ("multiple heads per cluster... this
// quorum-like approach should result in only an additional constant
// factor overhead, but would allow for the failure of limited sets of
// VSAs"): every cluster message goes to both heads, a warm-standby
// replica mirrors each multi-member cluster's process, and it speaks for
// the cluster while the primary head's VSA is down.

func newReplicatedFixture(t *testing.T, side int, start geo.RegionID, alwaysUp bool) *fixture {
	t.Helper()
	f := &fixture{t: t, k: sim.New(42)}
	f.tiling = geo.MustGridTiling(side, side)
	f.h = hier.MustGrid(f.tiling, 2)
	var layerOpts []vsa.Option
	if alwaysUp {
		layerOpts = append(layerOpts, vsa.WithAlwaysAlive())
	} else {
		layerOpts = append(layerOpts, vsa.WithTRestart(unit))
	}
	f.layer = vsa.NewLayer(f.k, f.tiling, layerOpts...)
	f.ledger = metrics.NewLedger()
	vb := vbcast.New(f.k, f.layer, delta, lagE, f.ledger)
	gc := geocast.New(f.k, f.layer, f.h.Graph(), vb, f.ledger)
	geom := hier.MeasureGeometry(f.h)
	cg, err := cgcast.New(f.h, f.layer, gc, vb, geom, f.ledger, cgcast.WithReplication())
	if err != nil {
		t.Fatal(err)
	}
	net, err := New(cg, geom,
		WithHeadReplication(),
		WithFoundCallback(func(r FindResult) { f.founds = append(f.founds, r) }))
	if err != nil {
		t.Fatal(err)
	}
	f.net = net
	if err := net.AddStationaryClients(); err != nil {
		t.Fatal(err)
	}
	f.layer.StartAllAlive()
	ev, err := evader.New(f.tiling, start, net.Sink())
	if err != nil {
		t.Fatal(err)
	}
	f.ev = ev
	net.AttachEvader(ev.Region)
	return f
}

func TestReplicationMismatchRejected(t *testing.T) {
	k := sim.New(1)
	tiling := geo.MustGridTiling(4, 4)
	h := hier.MustGrid(tiling, 2)
	layer := vsa.NewLayer(k, tiling, vsa.WithAlwaysAlive())
	vb := vbcast.New(k, layer, delta, lagE, nil)
	gc := geocast.New(k, layer, h.Graph(), vb, nil)
	geom := hier.MeasureGeometry(h)
	cgPlain, err := cgcast.New(h, layer, gc, vb, geom, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(cgPlain, geom, WithHeadReplication()); err == nil {
		t.Fatal("network with replication accepted a non-replicated C-gcast")
	}
}

func TestReplicasMirrorPrimaryState(t *testing.T) {
	f := newReplicatedFixture(t, 8, 0, true)
	f.settle()
	f.assertTracksEvader()
	for c := 0; c < f.h.NumClusters(); c++ {
		id := hier.ClusterID(c)
		bk := f.net.BackupProcess(id)
		if f.h.AltHead(id) == geo.NoRegion {
			if bk != nil {
				t.Fatalf("cluster %v has a backup without an alternate head", id)
			}
			continue
		}
		if bk == nil {
			t.Fatalf("cluster %v missing its backup replica", id)
		}
		pc, pp, pup, pdown := f.net.Process(id).Pointers()
		bc, bp, bup, bdown := bk.Pointers()
		if pc != bc || pp != bp || pup != bup || pdown != bdown {
			t.Errorf("cluster %v replica diverged: primary (%v,%v,%v,%v) vs backup (%v,%v,%v,%v)",
				id, pc, pp, pup, pdown, bc, bp, bup, bdown)
		}
	}
}

func TestReplicationConstantFactorOverhead(t *testing.T) {
	work := func(replicated bool) int64 {
		var f *fixture
		if replicated {
			f = newReplicatedFixture(t, 8, 0, true)
		} else {
			f = newFixture(t, fixtureConfig{side: 8, start: 0, alwaysUp: true})
		}
		f.settle()
		for x := 1; x <= 5; x++ {
			if err := f.ev.MoveTo(f.tiling.RegionAt(x, x%2)); err != nil {
				t.Fatal(err)
			}
			f.settle()
		}
		if _, err := f.net.Find(f.tiling.RegionAt(7, 7)); err != nil {
			t.Fatal(err)
		}
		f.settle()
		return f.ledger.TotalWork()
	}
	plain, repl := work(false), work(true)
	if repl <= plain {
		t.Fatalf("replicated work %d not above plain %d", repl, plain)
	}
	if repl > 3*plain {
		t.Fatalf("replicated work %d exceeds the promised constant factor (plain %d)", repl, plain)
	}
}

func TestReplicaTakesOverWhenPrimaryHeadDies(t *testing.T) {
	f := newReplicatedFixture(t, 8, 9, false)
	f.settle()
	f.assertTracksEvader()

	// Kill the primary head VSA of the evader's level-1 cluster — without
	// replication this breaks finds permanently (see
	// TestFailureWithoutHeartbeatBreaksFinds). Keep it dead.
	lvl1 := f.h.Cluster(f.ev.Region(), 1)
	primary := f.h.Head(lvl1)
	alt := f.h.AltHead(lvl1)
	if alt == geo.NoRegion {
		t.Fatal("fixture cluster has no alternate head")
	}
	refuge := geo.NoRegion
	for _, nb := range f.tiling.Neighbors(primary) {
		if nb != alt {
			refuge = nb
			break
		}
	}
	for _, id := range f.layer.ClientsIn(primary) {
		if err := f.layer.MoveClient(id, refuge); err != nil {
			t.Fatal(err)
		}
	}
	if f.layer.Alive(primary) {
		t.Fatal("primary head VSA still alive")
	}
	if !f.layer.Alive(alt) {
		t.Fatal("alternate head VSA should be alive")
	}

	// Finds keep completing through the backup replica.
	id, err := f.net.Find(f.tiling.RegionAt(7, 7))
	if err != nil {
		t.Fatal(err)
	}
	f.k.RunFor(400 * unit)
	if !f.net.FindDone(id) {
		t.Fatal("find did not complete through the backup replica")
	}

	// Moves keep working too: the backup sends the cluster's grow/shrink
	// traffic while the primary is down.
	if err := f.ev.MoveTo(f.tiling.RegionAt(2, 1)); err != nil {
		t.Fatal(err)
	}
	f.k.RunFor(400 * unit)
	id2, err := f.net.Find(f.tiling.RegionAt(0, 7))
	if err != nil {
		t.Fatal(err)
	}
	f.k.RunFor(400 * unit)
	if !f.net.FindDone(id2) {
		t.Fatal("find after a move did not complete through the backup replica")
	}
}
