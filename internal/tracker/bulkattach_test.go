package tracker

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"vinestalk/internal/cgcast"
	"vinestalk/internal/evader"
	"vinestalk/internal/geo"
	"vinestalk/internal/hier"
	"vinestalk/internal/metrics"
)

// The bulk-attach equivalence property: AttachObjects(k) followed by a full
// settle yields exactly the state — every region's canonical v2 encoding,
// byte for byte — and exactly the ledger (under CountFrames accounting)
// that k sequential attaches produce. This is what lets every Theorem
// 4.8/4.9 checker carry over to bulk-attached populations unchanged.

// bulkPlacements is a mixed workload over a w×h tiling: a heavy cluster in
// one region (the path-dedup case bulk attach optimizes), a second smaller
// cluster, and a scattered tail.
func bulkPlacements(regions int) []AttachSpec {
	var specs []AttachSpec
	next := ObjectID(1)
	for i := 0; i < 10; i++ {
		specs = append(specs, AttachSpec{Obj: next, At: geo.RegionID(9 % regions)})
		next++
	}
	for i := 0; i < 5; i++ {
		specs = append(specs, AttachSpec{Obj: next, At: geo.RegionID(21 % regions)})
		next++
	}
	for i := 0; i < 8; i++ {
		specs = append(specs, AttachSpec{Obj: next, At: geo.RegionID((i * 17) % regions)})
		next++
	}
	return specs
}

// attachSequentially replays specs through the one-at-a-time path: a real
// evader per object (its GPS move input fires at once), hooks registered,
// then one settle — the same shape core.Service.AddObject + Settle drives.
func attachSequentially(t *testing.T, f *fixture, specs []AttachSpec) map[ObjectID]*evader.Evader {
	t.Helper()
	evs := make(map[ObjectID]*evader.Evader, len(specs))
	for _, sp := range specs {
		ev, err := evader.New(f.tiling, sp.At, f.net.SinkFor(sp.Obj))
		if err != nil {
			t.Fatal(err)
		}
		f.net.AttachObject(sp.Obj, ev.Region)
		evs[sp.Obj] = ev
	}
	f.settle()
	return evs
}

// attachBulk replays specs through AttachObjects, with evaders placed
// silently (NewPlaced) so the bulk path is the only detection source.
func attachBulk(t *testing.T, f *fixture, specs []AttachSpec) map[ObjectID]*evader.Evader {
	t.Helper()
	evs := make(map[ObjectID]*evader.Evader, len(specs))
	withHooks := make([]AttachSpec, len(specs))
	for i, sp := range specs {
		ev, err := evader.NewPlaced(f.tiling, sp.At, f.net.SinkFor(sp.Obj))
		if err != nil {
			t.Fatal(err)
		}
		evs[sp.Obj] = ev
		withHooks[i] = AttachSpec{Obj: sp.Obj, At: sp.At, Where: ev.Region}
	}
	if err := f.net.AttachObjects(withHooks); err != nil {
		t.Fatal(err)
	}
	f.settle()
	return evs
}

// assertSameMachine compares every region's canonical encoding and the
// machine-wide live-object count between two fixtures.
func assertSameMachine(t *testing.T, ctx string, seq, bulk *fixture) {
	t.Helper()
	if ls, lb := liveObjects(seq.net.Automaton()), liveObjects(bulk.net.Automaton()); ls != lb {
		t.Errorf("%s: live objects differ: sequential %d, bulk %d", ctx, ls, lb)
	}
	regions := seq.h.Tiling().NumRegions()
	diff := 0
	for u := 0; u < regions; u++ {
		region := geo.RegionID(u)
		es := seq.net.Automaton().EncodeRegion(region)
		eb := bulk.net.Automaton().EncodeRegion(region)
		if !bytes.Equal(es, eb) {
			diff++
			if diff <= 3 {
				t.Errorf("%s: region %v encoding differs (%d vs %d bytes)", ctx, region, len(es), len(eb))
			}
		}
	}
	if diff > 3 {
		t.Errorf("%s: %d regions differ in total", ctx, diff)
	}
}

// assertSameLedger compares the counter maps of two ledgers (latency
// histograms excluded: virtual start times differ between the two attach
// orders even though per-message accounting is identical).
func assertSameLedger(t *testing.T, ctx string, seq, bulk *metrics.Ledger) {
	t.Helper()
	ss, sb := seq.Snapshot(), bulk.Snapshot()
	if !reflect.DeepEqual(ss.MsgCount, sb.MsgCount) {
		t.Errorf("%s: message counts differ:\nsequential %v\nbulk       %v", ctx, ss.MsgCount, sb.MsgCount)
	}
	if !reflect.DeepEqual(ss.HopWork, sb.HopWork) {
		t.Errorf("%s: hop work differs:\nsequential %v\nbulk       %v", ctx, ss.HopWork, sb.HopWork)
	}
	if !reflect.DeepEqual(ss.Delivered, sb.Delivered) {
		t.Errorf("%s: deliveries differ:\nsequential %v\nbulk       %v", ctx, ss.Delivered, sb.Delivered)
	}
	if !reflect.DeepEqual(ss.Drops, sb.Drops) {
		t.Errorf("%s: drops differ:\nsequential %v\nbulk       %v", ctx, ss.Drops, sb.Drops)
	}
}

func TestBulkAttachMatchesSequentialGrid(t *testing.T) {
	cfg := fixtureConfig{side: 8, start: 0, alwaysUp: true,
		cgOptions: []cgcast.Option{cgcast.WithFrameAccounting()}}
	seq := newFixture(t, cfg)
	bulk := newFixture(t, cfg)
	specs := bulkPlacements(seq.tiling.NumRegions())

	seqEvs := attachSequentially(t, seq, specs)
	bulkEvs := attachBulk(t, bulk, specs)

	assertSameMachine(t, "post-attach", seq, bulk)
	assertSameLedger(t, "post-attach", seq.ledger, bulk.ledger)

	// The equivalence must survive being *used*: identical moves and finds
	// on both sides keep the machines byte-identical, and the finds land on
	// the true regions — the spliced detection state behaves like the real
	// thing.
	for _, obj := range []ObjectID{1, 12, 20} {
		target := seq.tiling.Neighbors(seqEvs[obj].Region())[0]
		if err := seqEvs[obj].MoveTo(target); err != nil {
			t.Fatal(err)
		}
		if err := bulkEvs[obj].MoveTo(target); err != nil {
			t.Fatal(err)
		}
	}
	seq.settle()
	bulk.settle()
	assertSameMachine(t, "post-move", seq, bulk)
	assertSameLedger(t, "post-move", seq.ledger, bulk.ledger)

	for _, obj := range []ObjectID{1, 11, 16, 23} {
		origin := geo.RegionID(63)
		ids, idb := mustFind(t, seq, origin, obj), mustFind(t, bulk, origin, obj)
		seq.settle()
		bulk.settle()
		if !seq.net.FindDone(ids) || !bulk.net.FindDone(idb) {
			t.Fatalf("find for object %d incomplete (seq %v, bulk %v)", obj, seq.net.FindDone(ids), bulk.net.FindDone(idb))
		}
	}
	if len(seq.founds) != len(bulk.founds) {
		t.Fatalf("found counts differ: sequential %d, bulk %d", len(seq.founds), len(bulk.founds))
	}
	for i := range seq.founds {
		if seq.founds[i].FoundAt != bulk.founds[i].FoundAt || seq.founds[i].Object != bulk.founds[i].Object {
			t.Errorf("found %d differs: sequential %+v, bulk %+v", i, seq.founds[i], bulk.founds[i])
		}
	}
	assertSameMachine(t, "post-find", seq, bulk)
	assertSameLedger(t, "post-find", seq.ledger, bulk.ledger)
}

func mustFind(t *testing.T, f *fixture, origin geo.RegionID, obj ObjectID) FindID {
	t.Helper()
	id, err := f.net.FindObject(origin, obj)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestBulkAttachMatchesSequentialLandmark(t *testing.T) {
	tl := geo.MustGridTiling(9, 9)
	build := func() (*fixture, *hier.Hierarchy) {
		h, err := hier.NewLandmark(tl, 2)
		if err != nil {
			t.Fatal(err)
		}
		return newHierFixture(t, tl, h, 40, cgcast.WithFrameAccounting()), h
	}
	seq, _ := build()
	bulk, _ := build()
	seq.settle()
	bulk.settle()
	specs := bulkPlacements(tl.NumRegions())

	attachSequentially(t, seq, specs)
	attachBulk(t, bulk, specs)

	assertSameMachine(t, "landmark post-attach", seq, bulk)
	assertSameLedger(t, "landmark post-attach", seq.ledger, bulk.ledger)
}

// TestBulkAttachChurnEvictsToBaseline extends TestChurnEvictsToBaseline to
// bulk-attached populations: after the whole batch is removed again, every
// region's encoding and the machine-wide live-object count return byte-
// exactly to the pre-batch baseline — splice rows obey the same quiescence
// eviction as organically grown ones.
func TestBulkAttachChurnEvictsToBaseline(t *testing.T) {
	f := newFixture(t, fixtureConfig{side: 4, start: 5, alwaysUp: true})
	f.settle()
	aut := f.net.Automaton()

	baselineLive := liveObjects(aut)
	baselineEnc := make(map[geo.RegionID][]byte, f.tiling.NumRegions())
	for u := 0; u < f.tiling.NumRegions(); u++ {
		baselineEnc[geo.RegionID(u)] = aut.EncodeRegion(geo.RegionID(u))
	}

	specs := []AttachSpec{
		{Obj: 7, At: 10}, {Obj: 8, At: 10}, {Obj: 9, At: 10}, // clustered
		{Obj: 11, At: 3}, {Obj: 12, At: 12}, // scattered
	}
	evs := attachBulk(t, f, specs)
	if got := liveObjects(aut); got <= baselineLive {
		t.Fatalf("bulk attach planted no state: live %d, baseline %d", got, baselineLive)
	}
	// Exercise one of them so removal dismantles a *moved* structure too.
	if err := evs[8].MoveTo(11); err != nil {
		t.Fatal(err)
	}
	f.settle()

	for _, sp := range specs {
		if err := f.net.RemoveObject(sp.Obj); err != nil {
			t.Fatal(err)
		}
		f.settle()
	}
	if got := liveObjects(aut); got != baselineLive {
		t.Fatalf("after removal live objects = %d, want baseline %d", got, baselineLive)
	}
	for u := 0; u < f.tiling.NumRegions(); u++ {
		region := geo.RegionID(u)
		if got := aut.EncodeRegion(region); !bytes.Equal(got, baselineEnc[region]) {
			t.Errorf("region %v encoding did not return to baseline: %d bytes vs %d",
				region, len(got), len(baselineEnc[region]))
		}
	}
}

func TestBulkAttachRejectsBadSpecs(t *testing.T) {
	f := newFixture(t, fixtureConfig{side: 4, start: 5, alwaysUp: true})
	f.settle()

	if err := f.net.AttachObjects([]AttachSpec{{Obj: 1, At: 2}, {Obj: 1, At: 3}}); err == nil {
		t.Error("duplicate object id accepted")
	}
	if err := f.net.AttachObjects([]AttachSpec{{Obj: DefaultObject, At: 2}}); err == nil {
		t.Error("already-attached object accepted")
	}
	if err := f.net.AttachObjects([]AttachSpec{{Obj: 1, At: 9999}}); err == nil {
		t.Error("out-of-tiling region accepted")
	}
	if err := f.net.AttachObjects(nil); err != nil {
		t.Errorf("empty bulk attach should be a no-op, got %v", err)
	}

	hb := newFixture(t, fixtureConfig{side: 4, start: 5, alwaysUp: true, heartbeat: 50 * time.Millisecond})
	if err := hb.net.AttachObjects([]AttachSpec{{Obj: 1, At: 2}}); err == nil {
		t.Error("bulk attach with heartbeats accepted")
	}
}
