// Package trace provides protocol-level observability for narrated runs
// and debugging: a bounded ring of typed events that components emit
// (message sends and deliveries, timer firings, found outputs, VSA
// lifecycle) plus an optional live sink for CLI streaming.
//
// Tracing is off unless a Tracer is attached, and costs nothing when off:
// every *Tracer method is nil-receiver-safe, so call sites need no guards,
// and events carry typed fields (object, clusters, level, operation id)
// that are only formatted into text when an event is actually printed — an
// un-traced fast path never runs fmt.Sprintf.
//
// Events may carry an operation id built with OpFind or OpMove, letting
// one find or move operation be correlated across components
// (client → leaf → up-phase → down-phase → found); Span extracts an
// operation's events and FormatSpan renders its hop/latency breakdown.
package trace

import (
	"fmt"
	"io"
	"strings"

	"vinestalk/internal/sim"
)

// Operation ids pack an operation class into the top bits and the
// class-local sequence number into the low bits. Id 0 means "no operation".
const (
	opClassShift        = 60
	opSeqMask    uint64 = 1<<opClassShift - 1

	opClassFind uint64 = 1
	opClassMove uint64 = 2
)

// OpFind returns the operation id correlating all events of one find
// operation.
func OpFind(id int64) uint64 { return opClassFind<<opClassShift | uint64(id)&opSeqMask }

// OpMove returns the operation id correlating all events of one move
// epoch (the grow/shrink cascade triggered by an object region change).
func OpMove(seq uint64) uint64 { return opClassMove<<opClassShift | seq&opSeqMask }

// OpMoveFor is OpMove for one of several tracked objects: the object id
// occupies bits [32,60) and the object's own epoch counter the low 32, so
// concurrent cascades of different objects never share an operation id.
// OpMoveFor(0, seq) == OpMove(seq) — single-object traces are unchanged.
func OpMoveFor(obj int32, seq uint64) uint64 {
	return opClassMove<<opClassShift | uint64(uint32(obj))<<32 | seq&0xFFFFFFFF
}

// OpString renders an operation id ("find#12", "move#3", "obj2/move#3");
// empty for 0.
func OpString(op uint64) string {
	seq := op & opSeqMask
	switch op >> opClassShift {
	case opClassFind:
		return fmt.Sprintf("find#%d", seq)
	case opClassMove:
		if obj := seq >> 32; obj != 0 {
			return fmt.Sprintf("obj%d/move#%d", obj, seq&0xFFFFFFFF)
		}
		return fmt.Sprintf("move#%d", seq)
	case 0:
		if op == 0 {
			return ""
		}
	}
	return fmt.Sprintf("op#%d", op)
}

// Event is one traced occurrence. Only At and Kind are always meaningful;
// the typed fields use -1 (or 0 for Op) when not applicable, and Detail
// carries any free-form text. Emitters fill typed fields instead of
// formatting strings so that emitting is cheap; String renders lazily.
type Event struct {
	// At is the virtual time of the event.
	At sim.Time
	// Kind groups events ("send", "recv", "timer", "found", "reset", ...).
	Kind string
	// Op correlates the event to one find/move operation (OpFind/OpMove);
	// 0 when uncorrelated.
	Op uint64
	// Obj is the tracked object concerned, -1 when none.
	Obj int32
	// From is the source cluster id, -1 for clients or when not applicable.
	From int32
	// To is the destination cluster id, -1 when not applicable.
	To int32
	// Region is a region involved in the event (a find's origin, a found
	// output's answer region), -1 when not applicable.
	Region int32
	// Level is the hierarchy level concerned, -1 when not applicable.
	Level int16
	// Msg is the protocol message kind ("grow", "find", ...), if any.
	Msg string
	// Detail is optional free-form text.
	Detail string
}

// String renders the event as one log line.
func (e Event) String() string {
	return fmt.Sprintf("%12v  %s", e.At, e.Body())
}

// Body renders everything but the timestamp (FormatSpan prints its own
// time columns).
func (e Event) Body() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s", e.Kind)
	if s := OpString(e.Op); s != "" {
		fmt.Fprintf(&b, " [%s]", s)
	}
	if e.Obj >= 0 {
		fmt.Fprintf(&b, " obj %d:", e.Obj)
	}
	if e.Msg != "" {
		fmt.Fprintf(&b, " %s", e.Msg)
	}
	switch {
	case e.From >= 0 && e.To >= 0:
		fmt.Fprintf(&b, " c%d -> c%d", e.From, e.To)
	case e.From >= 0:
		fmt.Fprintf(&b, " c%d", e.From)
	case e.To >= 0:
		fmt.Fprintf(&b, " -> c%d", e.To)
	}
	if e.Level >= 0 {
		fmt.Fprintf(&b, " (level %d)", e.Level)
	}
	if e.Region >= 0 {
		fmt.Fprintf(&b, " at r%d", e.Region)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " %s", e.Detail)
	}
	return b.String()
}

// Tracer collects events into a bounded ring (oldest dropped first) and
// optionally streams them to a live sink. It is not safe for concurrent
// use; the simulation is single-threaded. All methods are safe on a nil
// receiver: a nil *Tracer is a disabled tracer.
type Tracer struct {
	capacity int
	events   []Event
	start    int // ring start index
	total    uint64
	sink     func(Event)
}

// New creates a tracer retaining up to capacity events (minimum 1).
func New(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{capacity: capacity}
}

// Enabled reports whether events are being collected. Call sites that must
// do real work to build an event (payload unwrapping, map lookups) can
// check it; plain typed emits don't need to.
func (t *Tracer) Enabled() bool { return t != nil }

// Attach installs a live sink invoked for every event as it is emitted.
// No-op on a nil tracer.
func (t *Tracer) Attach(sink func(Event)) {
	if t == nil {
		return
	}
	t.sink = sink
}

// Emit records a typed event. No-op on a nil tracer.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	if len(t.events) < t.capacity {
		t.events = append(t.events, e)
	} else {
		t.events[t.start] = e
		t.start = (t.start + 1) % t.capacity
	}
	t.total++
	if t.sink != nil {
		t.sink(e)
	}
}

// Emitf records a free-form event (the typed fields are unset). Prefer
// Emit with typed fields on hot paths: Emitf formats eagerly.
func (t *Tracer) Emitf(at sim.Time, kind, format string, args ...any) {
	if t == nil {
		return
	}
	t.Emit(Event{
		At: at, Kind: kind, Detail: fmt.Sprintf(format, args...),
		Obj: -1, From: -1, To: -1, Region: -1, Level: -1,
	})
}

// Events returns the retained events in emission order (a copy). Nil-safe.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.start:]...)
	out = append(out, t.events[:t.start]...)
	return out
}

// Span returns the retained events belonging to one operation, in
// emission order. Nil-safe.
func (t *Tracer) Span(op uint64) []Event {
	if t == nil || op == 0 {
		return nil
	}
	var out []Event
	for _, e := range t.Events() {
		if e.Op == op {
			out = append(out, e)
		}
	}
	return out
}

// Total returns the number of events emitted over the tracer's lifetime
// (including any that have rotated out of the ring). Nil-safe.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Dump writes the retained events to w, one line each. Nil-safe.
func (t *Tracer) Dump(w io.Writer) {
	for _, e := range t.Events() {
		fmt.Fprintln(w, e.String())
	}
}

// FormatSpan renders one operation's events as a hop/latency breakdown:
// per event, the elapsed time since the operation started and the delta
// from the previous event, then the span total.
func FormatSpan(w io.Writer, events []Event) {
	if len(events) == 0 {
		fmt.Fprintln(w, "(no events)")
		return
	}
	start := events[0].At
	prev := start
	for _, e := range events {
		fmt.Fprintf(w, "%12v  +%-12v %s\n", e.At-start, e.At-prev, e.Body())
		prev = e.At
	}
	fmt.Fprintf(w, "%12s  total %v over %d events\n", "", events[len(events)-1].At-start, len(events))
}
