// Package trace provides protocol-level observability for narrated runs
// and debugging: a bounded ring of structured events that components emit
// (message sends and deliveries, timer firings, found outputs, VSA
// lifecycle) plus an optional live sink for CLI streaming. Tracing is off
// unless a Tracer is attached, and costs nothing when off.
package trace

import (
	"fmt"
	"io"

	"vinestalk/internal/sim"
)

// Event is one traced occurrence.
type Event struct {
	// At is the virtual time of the event.
	At sim.Time
	// Kind groups events ("send", "recv", "timer", "found", ...).
	Kind string
	// Detail is the human-readable description.
	Detail string
}

// String renders the event as one log line.
func (e Event) String() string {
	return fmt.Sprintf("%12v  %-7s %s", e.At, e.Kind, e.Detail)
}

// Tracer collects events into a bounded ring (oldest dropped first) and
// optionally streams them to a live sink. It is not safe for concurrent
// use; the simulation is single-threaded.
type Tracer struct {
	capacity int
	events   []Event
	start    int // ring start index
	total    uint64
	sink     func(Event)
}

// New creates a tracer retaining up to capacity events (minimum 1).
func New(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{capacity: capacity}
}

// Attach installs a live sink invoked for every event as it is emitted.
func (t *Tracer) Attach(sink func(Event)) { t.sink = sink }

// Emitf records an event.
func (t *Tracer) Emitf(at sim.Time, kind, format string, args ...any) {
	e := Event{At: at, Kind: kind, Detail: fmt.Sprintf(format, args...)}
	if len(t.events) < t.capacity {
		t.events = append(t.events, e)
	} else {
		t.events[t.start] = e
		t.start = (t.start + 1) % t.capacity
	}
	t.total++
	if t.sink != nil {
		t.sink(e)
	}
}

// Events returns the retained events in emission order (a copy).
func (t *Tracer) Events() []Event {
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.start:]...)
	out = append(out, t.events[:t.start]...)
	return out
}

// Total returns the number of events emitted over the tracer's lifetime
// (including any that have rotated out of the ring).
func (t *Tracer) Total() uint64 { return t.total }

// Dump writes the retained events to w, one line each.
func (t *Tracer) Dump(w io.Writer) {
	for _, e := range t.Events() {
		fmt.Fprintln(w, e.String())
	}
}
