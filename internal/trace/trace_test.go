package trace

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestTracerRetainsInOrder(t *testing.T) {
	tr := New(10)
	for i := 0; i < 5; i++ {
		tr.Emitf(time.Duration(i)*time.Millisecond, "send", "msg %d", i)
	}
	events := tr.Events()
	if len(events) != 5 {
		t.Fatalf("retained %d events, want 5", len(events))
	}
	for i, e := range events {
		if e.Kind != "send" || !strings.Contains(e.Detail, "msg") {
			t.Fatalf("event %d = %+v", i, e)
		}
		if i > 0 && events[i-1].At > e.At {
			t.Fatal("events out of order")
		}
	}
	if tr.Total() != 5 {
		t.Errorf("Total = %d, want 5", tr.Total())
	}
}

func TestTracerRingRotation(t *testing.T) {
	tr := New(3)
	for i := 0; i < 7; i++ {
		tr.Emitf(time.Duration(i), "k", "%d", i)
	}
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("retained %d, want 3", len(events))
	}
	want := []string{"4", "5", "6"}
	for i := range want {
		if events[i].Detail != want[i] {
			t.Fatalf("events = %+v, want details %v", events, want)
		}
	}
	if tr.Total() != 7 {
		t.Errorf("Total = %d, want 7", tr.Total())
	}
}

// At exactly capacity the ring must hold every event in order with no
// rotation yet — the boundary between the append regime and the overwrite
// regime of Emitf.
func TestTracerExactCapacityBoundary(t *testing.T) {
	tr := New(3)
	for i := 0; i < 3; i++ {
		tr.Emitf(time.Duration(i), "k", "%d", i)
	}
	events := tr.Events()
	want := []string{"0", "1", "2"}
	if len(events) != 3 {
		t.Fatalf("retained %d, want 3", len(events))
	}
	for i := range want {
		if events[i].Detail != want[i] {
			t.Fatalf("at exact capacity events = %+v, want details %v", events, want)
		}
	}
	if tr.Total() != 3 {
		t.Errorf("Total = %d, want 3", tr.Total())
	}

	// The very next emission is the first overwrite: the oldest event
	// rotates out and emission order is preserved across the seam.
	tr.Emitf(3, "k", "3")
	events = tr.Events()
	want = []string{"1", "2", "3"}
	for i := range want {
		if events[i].Detail != want[i] {
			t.Fatalf("after first rotation events = %+v, want details %v", events, want)
		}
	}
}

// Events() must report emission order after arbitrary wraparound, including
// a full extra lap (start index back at 0) and mid-lap positions.
func TestTracerEventsOrderAfterWraparound(t *testing.T) {
	for _, n := range []int{4, 5, 6, 7, 11} {
		tr := New(3)
		for i := 0; i < n; i++ {
			tr.Emitf(time.Duration(i), "k", "%d", i)
		}
		events := tr.Events()
		if len(events) != 3 {
			t.Fatalf("n=%d: retained %d, want 3", n, len(events))
		}
		for i, e := range events {
			want := strconv.Itoa(n - 3 + i)
			if e.Detail != want {
				t.Fatalf("n=%d: events = %+v, want the last 3 in emission order", n, events)
			}
		}
		if tr.Total() != uint64(n) {
			t.Errorf("n=%d: Total = %d", n, tr.Total())
		}
	}
}

func TestTracerLiveSink(t *testing.T) {
	tr := New(2)
	var got []Event
	tr.Attach(func(e Event) { got = append(got, e) })
	for i := 0; i < 4; i++ {
		tr.Emitf(0, "k", "%d", i)
	}
	if len(got) != 4 {
		t.Fatalf("sink saw %d events, want all 4", len(got))
	}
}

func TestTracerMinimumCapacity(t *testing.T) {
	tr := New(0)
	tr.Emitf(0, "a", "x")
	tr.Emitf(0, "b", "y")
	events := tr.Events()
	if len(events) != 1 || events[0].Kind != "b" {
		t.Fatalf("events = %+v, want just the last", events)
	}
}

func TestTracerDumpAndString(t *testing.T) {
	tr := New(4)
	tr.Emitf(15*time.Millisecond, "send", "grow c1 -> c2")
	var b strings.Builder
	tr.Dump(&b)
	out := b.String()
	if !strings.Contains(out, "grow c1 -> c2") || !strings.Contains(out, "send") {
		t.Errorf("Dump = %q", out)
	}
}
