package trace

import (
	"strings"
	"testing"
	"time"
)

func TestTracerRetainsInOrder(t *testing.T) {
	tr := New(10)
	for i := 0; i < 5; i++ {
		tr.Emitf(time.Duration(i)*time.Millisecond, "send", "msg %d", i)
	}
	events := tr.Events()
	if len(events) != 5 {
		t.Fatalf("retained %d events, want 5", len(events))
	}
	for i, e := range events {
		if e.Kind != "send" || !strings.Contains(e.Detail, "msg") {
			t.Fatalf("event %d = %+v", i, e)
		}
		if i > 0 && events[i-1].At > e.At {
			t.Fatal("events out of order")
		}
	}
	if tr.Total() != 5 {
		t.Errorf("Total = %d, want 5", tr.Total())
	}
}

func TestTracerRingRotation(t *testing.T) {
	tr := New(3)
	for i := 0; i < 7; i++ {
		tr.Emitf(time.Duration(i), "k", "%d", i)
	}
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("retained %d, want 3", len(events))
	}
	want := []string{"4", "5", "6"}
	for i := range want {
		if events[i].Detail != want[i] {
			t.Fatalf("events = %+v, want details %v", events, want)
		}
	}
	if tr.Total() != 7 {
		t.Errorf("Total = %d, want 7", tr.Total())
	}
}

func TestTracerLiveSink(t *testing.T) {
	tr := New(2)
	var got []Event
	tr.Attach(func(e Event) { got = append(got, e) })
	for i := 0; i < 4; i++ {
		tr.Emitf(0, "k", "%d", i)
	}
	if len(got) != 4 {
		t.Fatalf("sink saw %d events, want all 4", len(got))
	}
}

func TestTracerMinimumCapacity(t *testing.T) {
	tr := New(0)
	tr.Emitf(0, "a", "x")
	tr.Emitf(0, "b", "y")
	events := tr.Events()
	if len(events) != 1 || events[0].Kind != "b" {
		t.Fatalf("events = %+v, want just the last", events)
	}
}

func TestTracerDumpAndString(t *testing.T) {
	tr := New(4)
	tr.Emitf(15*time.Millisecond, "send", "grow c1 -> c2")
	var b strings.Builder
	tr.Dump(&b)
	out := b.String()
	if !strings.Contains(out, "grow c1 -> c2") || !strings.Contains(out, "send") {
		t.Errorf("Dump = %q", out)
	}
}
