package trace

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestTracerRetainsInOrder(t *testing.T) {
	tr := New(10)
	for i := 0; i < 5; i++ {
		tr.Emitf(time.Duration(i)*time.Millisecond, "send", "msg %d", i)
	}
	events := tr.Events()
	if len(events) != 5 {
		t.Fatalf("retained %d events, want 5", len(events))
	}
	for i, e := range events {
		if e.Kind != "send" || !strings.Contains(e.Detail, "msg") {
			t.Fatalf("event %d = %+v", i, e)
		}
		if i > 0 && events[i-1].At > e.At {
			t.Fatal("events out of order")
		}
	}
	if tr.Total() != 5 {
		t.Errorf("Total = %d, want 5", tr.Total())
	}
}

func TestTracerRingRotation(t *testing.T) {
	tr := New(3)
	for i := 0; i < 7; i++ {
		tr.Emitf(time.Duration(i), "k", "%d", i)
	}
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("retained %d, want 3", len(events))
	}
	want := []string{"4", "5", "6"}
	for i := range want {
		if events[i].Detail != want[i] {
			t.Fatalf("events = %+v, want details %v", events, want)
		}
	}
	if tr.Total() != 7 {
		t.Errorf("Total = %d, want 7", tr.Total())
	}
}

// At exactly capacity the ring must hold every event in order with no
// rotation yet — the boundary between the append regime and the overwrite
// regime of Emitf.
func TestTracerExactCapacityBoundary(t *testing.T) {
	tr := New(3)
	for i := 0; i < 3; i++ {
		tr.Emitf(time.Duration(i), "k", "%d", i)
	}
	events := tr.Events()
	want := []string{"0", "1", "2"}
	if len(events) != 3 {
		t.Fatalf("retained %d, want 3", len(events))
	}
	for i := range want {
		if events[i].Detail != want[i] {
			t.Fatalf("at exact capacity events = %+v, want details %v", events, want)
		}
	}
	if tr.Total() != 3 {
		t.Errorf("Total = %d, want 3", tr.Total())
	}

	// The very next emission is the first overwrite: the oldest event
	// rotates out and emission order is preserved across the seam.
	tr.Emitf(3, "k", "3")
	events = tr.Events()
	want = []string{"1", "2", "3"}
	for i := range want {
		if events[i].Detail != want[i] {
			t.Fatalf("after first rotation events = %+v, want details %v", events, want)
		}
	}
}

// Events() must report emission order after arbitrary wraparound, including
// a full extra lap (start index back at 0) and mid-lap positions.
func TestTracerEventsOrderAfterWraparound(t *testing.T) {
	for _, n := range []int{4, 5, 6, 7, 11} {
		tr := New(3)
		for i := 0; i < n; i++ {
			tr.Emitf(time.Duration(i), "k", "%d", i)
		}
		events := tr.Events()
		if len(events) != 3 {
			t.Fatalf("n=%d: retained %d, want 3", n, len(events))
		}
		for i, e := range events {
			want := strconv.Itoa(n - 3 + i)
			if e.Detail != want {
				t.Fatalf("n=%d: events = %+v, want the last 3 in emission order", n, events)
			}
		}
		if tr.Total() != uint64(n) {
			t.Errorf("n=%d: Total = %d", n, tr.Total())
		}
	}
}

func TestTracerLiveSink(t *testing.T) {
	tr := New(2)
	var got []Event
	tr.Attach(func(e Event) { got = append(got, e) })
	for i := 0; i < 4; i++ {
		tr.Emitf(0, "k", "%d", i)
	}
	if len(got) != 4 {
		t.Fatalf("sink saw %d events, want all 4", len(got))
	}
}

func TestTracerMinimumCapacity(t *testing.T) {
	tr := New(0)
	tr.Emitf(0, "a", "x")
	tr.Emitf(0, "b", "y")
	events := tr.Events()
	if len(events) != 1 || events[0].Kind != "b" {
		t.Fatalf("events = %+v, want just the last", events)
	}
}

func TestTracerDumpAndString(t *testing.T) {
	tr := New(4)
	tr.Emitf(15*time.Millisecond, "send", "grow c1 -> c2")
	var b strings.Builder
	tr.Dump(&b)
	out := b.String()
	if !strings.Contains(out, "grow c1 -> c2") || !strings.Contains(out, "send") {
		t.Errorf("Dump = %q", out)
	}
}

// A nil *Tracer is a disabled tracer: every method must be callable
// without guards at call sites.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	tr.Emit(Event{At: time.Second, Kind: "send"})
	tr.Emitf(time.Second, "send", "x %d", 1)
	tr.Attach(func(Event) { t.Error("sink invoked on nil tracer") })
	if got := tr.Events(); got != nil {
		t.Errorf("Events = %v, want nil", got)
	}
	if got := tr.Span(OpFind(1)); got != nil {
		t.Errorf("Span = %v, want nil", got)
	}
	if tr.Total() != 0 {
		t.Errorf("Total = %d", tr.Total())
	}
	var b strings.Builder
	tr.Dump(&b)
	if b.Len() != 0 {
		t.Errorf("Dump wrote %q", b.String())
	}
}

func TestOpIDsDistinctAndRendered(t *testing.T) {
	if OpFind(3) == OpMove(3) {
		t.Error("find and move ops collide")
	}
	if OpFind(3) == OpFind(4) {
		t.Error("distinct find ids collide")
	}
	if got := OpString(OpFind(12)); got != "find#12" {
		t.Errorf("OpString(OpFind(12)) = %q", got)
	}
	if got := OpString(OpMove(7)); got != "move#7" {
		t.Errorf("OpString(OpMove(7)) = %q", got)
	}
	if got := OpString(0); got != "" {
		t.Errorf("OpString(0) = %q, want empty", got)
	}
}

func TestSpanFiltersByOp(t *testing.T) {
	tr := New(16)
	op := OpFind(5)
	tr.Emit(Event{At: 1, Kind: "find", Op: op, Obj: 0, From: -1, To: 2, Region: 4, Level: -1})
	tr.Emit(Event{At: 2, Kind: "send", Op: OpMove(1), Obj: 0, From: 1, To: 2, Region: -1, Level: 0})
	tr.Emit(Event{At: 3, Kind: "recv", Op: op, Obj: 0, From: 2, To: 3, Region: -1, Level: 1, Msg: "find"})
	tr.Emit(Event{At: 4, Kind: "found", Op: op, Obj: 0, From: -1, To: -1, Region: 8, Level: -1})

	span := tr.Span(op)
	if len(span) != 3 {
		t.Fatalf("span has %d events, want 3: %v", len(span), span)
	}
	for i, e := range span {
		if e.Op != op {
			t.Errorf("span[%d].Op = %d", i, e.Op)
		}
	}
	if span[0].Kind != "find" || span[2].Kind != "found" {
		t.Errorf("span order = %v", span)
	}
	if got := tr.Span(0); got != nil {
		t.Errorf("Span(0) = %v, want nil", got)
	}
}

func TestTypedEventRendering(t *testing.T) {
	e := Event{
		At: 15 * time.Millisecond, Kind: "send", Op: OpFind(2), Obj: 0,
		Msg: "find", From: 3, To: 7, Region: -1, Level: 1,
	}
	s := e.String()
	for _, want := range []string{"send", "find#2", "obj 0", "find", "c3 -> c7", "(level 1)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	found := Event{At: time.Second, Kind: "found", Obj: 1, From: -1, To: -1, Region: 9, Level: -1}
	if s := found.String(); !strings.Contains(s, "at r9") {
		t.Errorf("found String() = %q, missing region", s)
	}
}

func TestFormatSpanBreakdown(t *testing.T) {
	op := OpFind(1)
	events := []Event{
		{At: 10 * time.Millisecond, Kind: "find", Op: op, Obj: -1, From: -1, To: 0, Region: -1, Level: -1},
		{At: 25 * time.Millisecond, Kind: "recv", Op: op, Obj: -1, From: -1, To: 0, Region: -1, Level: 0, Msg: "find"},
		{At: 55 * time.Millisecond, Kind: "found", Op: op, Obj: -1, From: -1, To: -1, Region: 3, Level: -1},
	}
	var b strings.Builder
	FormatSpan(&b, events)
	out := b.String()
	if !strings.Contains(out, "+15ms") || !strings.Contains(out, "+30ms") {
		t.Errorf("FormatSpan missing deltas:\n%s", out)
	}
	if !strings.Contains(out, "total 45ms over 3 events") {
		t.Errorf("FormatSpan missing total:\n%s", out)
	}

	b.Reset()
	FormatSpan(&b, nil)
	if !strings.Contains(b.String(), "no events") {
		t.Errorf("empty FormatSpan = %q", b.String())
	}
}
