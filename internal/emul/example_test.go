package emul_test

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"vinestalk/internal/emul"
	"vinestalk/internal/geo"
	"vinestalk/internal/sim"
)

// adder is a minimal deterministic Program: state is a counter, every
// input adds to it and emits the running total.
type adder struct{}

func (adder) Init(geo.RegionID) []byte { return make([]byte, 8) }

func (adder) Step(state []byte, in emul.Input) ([]byte, []emul.Output) {
	cur := binary.BigEndian.Uint64(state) + in.Msg.(uint64)
	next := make([]byte, 8)
	binary.BigEndian.PutUint64(next, cur)
	return next, []emul.Output{{Msg: cur}}
}

// Example emulates one region's VSA with two mobile nodes, survives the
// leader walking away mid-stream, and prints the machine's outputs — the
// same sequence a direct execution would produce.
func Example() {
	k := sim.New(1)
	tiling := geo.MustGridTiling(2, 1)
	e := emul.New(k, tiling, adder{}, 10*time.Millisecond, 50*time.Millisecond)
	for _, id := range []emul.NodeID{1, 2} {
		if err := e.AddNode(id, 0); err != nil {
			log.Fatal(err)
		}
	}
	e.Boot()

	_ = e.Submit(0, uint64(3))
	k.Run()
	_ = e.MoveNode(1, 1) // the leader leaves; node 2 takes over seamlessly
	_ = e.Submit(0, uint64(4))
	k.Run()

	for _, out := range e.TraceOf(0).Outputs {
		fmt.Println(out.Msg)
	}
	fmt.Println("leader:", e.Leader(0))
	// Output:
	// 3
	// 7
	// leader: n2
}
