package emul

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"vinestalk/internal/geo"
	"vinestalk/internal/sim"
)

const (
	delta    = 10 * time.Millisecond
	tRestart = 30 * time.Millisecond
)

// counterProgram is the deterministic test machine: state is a uint64
// counter; every "add k" input adds k and emits the running total.
type counterProgram struct{}

func (counterProgram) Init(u geo.RegionID) []byte {
	return make([]byte, 8)
}

func (counterProgram) Step(state []byte, in Input) ([]byte, []Output) {
	cur := binary.BigEndian.Uint64(state)
	k, ok := in.Msg.(uint64)
	if !ok {
		return state, nil
	}
	cur += k
	next := make([]byte, 8)
	binary.BigEndian.PutUint64(next, cur)
	return next, []Output{{Msg: cur}}
}

// oracle executes the program directly, returning the expected output
// sequence for a list of input payloads.
func oracle(u geo.RegionID, inputs []uint64) []any {
	var prog counterProgram
	state := prog.Init(u)
	var outs []any
	for i, k := range inputs {
		var o []Output
		state, o = prog.Step(state, Input{ID: uint64(i + 1), Msg: k})
		for _, out := range o {
			outs = append(outs, out.Msg)
		}
	}
	return outs
}

func outputs(tr Trace) []any {
	var out []any
	for _, o := range tr.Outputs {
		out = append(out, o.Msg)
	}
	return out
}

func assertTraceEqual(t *testing.T, got Trace, want []any) {
	t.Helper()
	g := outputs(got)
	if len(g) != len(want) {
		t.Fatalf("trace = %v, want %v", g, want)
	}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("trace[%d] = %v, want %v (full: %v vs %v)", i, g[i], want[i], g, want)
		}
	}
}

func newEmulator(t *testing.T, side int) (*sim.Kernel, *Emulator) {
	t.Helper()
	k := sim.New(1)
	return k, New(k, geo.MustGridTiling(side, side), counterProgram{}, delta, tRestart)
}

func TestSingleNodeEmulationMatchesOracle(t *testing.T) {
	k, e := newEmulator(t, 2)
	if err := e.AddNode(1, 0); err != nil {
		t.Fatal(err)
	}
	e.Boot()
	if !e.Alive(0) {
		t.Fatal("VSA not alive after Boot")
	}
	inputs := []uint64{3, 5, 7}
	for _, in := range inputs {
		if err := e.Submit(0, in); err != nil {
			t.Fatal(err)
		}
		k.Run()
	}
	assertTraceEqual(t, e.TraceOf(0), oracle(0, inputs))
	if got := e.Leader(0); got != 1 {
		t.Errorf("Leader = %v, want n1", got)
	}
}

func TestEmulationLagBounded(t *testing.T) {
	k, e := newEmulator(t, 2)
	if err := e.AddNode(1, 0); err != nil {
		t.Fatal(err)
	}
	e.Boot()
	if err := e.Submit(0, uint64(1)); err != nil {
		t.Fatal(err)
	}
	submitted := k.Now()
	k.Run()
	tr := e.TraceOf(0)
	if len(tr.Outputs) != 1 {
		t.Fatalf("trace = %v", tr)
	}
	lag := tr.Outputs[0].At - submitted
	if lag > e.MaxLag() {
		t.Errorf("output lag %v exceeds MaxLag %v", lag, e.MaxLag())
	}
	if lag <= 0 {
		t.Errorf("output lag %v not positive", lag)
	}
}

func TestLeaderIsLowestID(t *testing.T) {
	k, e := newEmulator(t, 2)
	for _, id := range []NodeID{5, 2, 9} {
		if err := e.AddNode(id, 0); err != nil {
			t.Fatal(err)
		}
	}
	e.Boot()
	if got := e.Leader(0); got != 2 {
		t.Errorf("Leader = %v, want n2", got)
	}
	_ = k
}

func TestLeaderHandoffLosesNothing(t *testing.T) {
	k, e := newEmulator(t, 2)
	if err := e.AddNode(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.AddNode(2, 0); err != nil {
		t.Fatal(err)
	}
	e.Boot()
	inputs := []uint64{10, 20}
	if err := e.Submit(0, inputs[0]); err != nil {
		t.Fatal(err)
	}
	k.Run()

	// Submit an input, then remove the leader after the broadcast round
	// but before the leader executes: the follower must take over and
	// execute it.
	if err := e.Submit(0, inputs[1]); err != nil {
		t.Fatal(err)
	}
	k.RunFor(delta + delta/2) // input buffered at both nodes
	if err := e.MoveNode(1, 1); err != nil {
		t.Fatal(err)
	}
	if got := e.Leader(0); got != 2 {
		t.Fatalf("Leader after handoff = %v, want n2", got)
	}
	k.Run()
	assertTraceEqual(t, e.TraceOf(0), oracle(0, inputs))
}

func TestLeaderCrashHandoff(t *testing.T) {
	k, e := newEmulator(t, 2)
	if err := e.AddNode(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.AddNode(2, 0); err != nil {
		t.Fatal(err)
	}
	e.Boot()
	if err := e.Submit(0, uint64(4)); err != nil {
		t.Fatal(err)
	}
	k.RunFor(delta + delta/2)
	e.FailNode(1)
	k.Run()
	assertTraceEqual(t, e.TraceOf(0), oracle(0, []uint64{4}))
	if !e.Alive(0) {
		t.Fatal("VSA died despite surviving replica")
	}
}

func TestNoDuplicateExecutionAcrossHandoff(t *testing.T) {
	k, e := newEmulator(t, 2)
	if err := e.AddNode(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.AddNode(2, 0); err != nil {
		t.Fatal(err)
	}
	e.Boot()
	// Input fully committed by the leader, THEN the leader leaves: the
	// new leader must not re-execute it.
	if err := e.Submit(0, uint64(6)); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if err := e.MoveNode(1, 1); err != nil {
		t.Fatal(err)
	}
	k.Run()
	assertTraceEqual(t, e.TraceOf(0), oracle(0, []uint64{6}))
}

func TestJoinerCheckpointsAndCanLead(t *testing.T) {
	k, e := newEmulator(t, 2)
	if err := e.AddNode(1, 0); err != nil {
		t.Fatal(err)
	}
	e.Boot()
	if err := e.Submit(0, uint64(2)); err != nil {
		t.Fatal(err)
	}
	k.Run()
	// A node joins, checkpoints, and then the original leader leaves.
	if err := e.AddNode(3, 0); err != nil {
		t.Fatal(err)
	}
	k.Run() // checkpoint transfer completes
	if err := e.Submit(0, uint64(8)); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if err := e.MoveNode(1, 1); err != nil {
		t.Fatal(err)
	}
	if got := e.Leader(0); got != 3 {
		t.Fatalf("Leader = %v, want n3", got)
	}
	if err := e.Submit(0, uint64(5)); err != nil {
		t.Fatal(err)
	}
	k.Run()
	assertTraceEqual(t, e.TraceOf(0), oracle(0, []uint64{2, 8, 5}))
}

func TestRegionEmptyFailsVSAAndRestartsFresh(t *testing.T) {
	k, e := newEmulator(t, 2)
	if err := e.AddNode(1, 0); err != nil {
		t.Fatal(err)
	}
	e.Boot()
	if err := e.Submit(0, uint64(9)); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if err := e.MoveNode(1, 1); err != nil {
		t.Fatal(err)
	}
	if e.Alive(0) {
		t.Fatal("VSA alive with empty region")
	}
	// Inputs while down are lost.
	if err := e.Submit(0, uint64(100)); err != nil {
		t.Fatal(err)
	}
	k.Run()
	// Node returns; VSA restarts from the initial state after tRestart.
	if err := e.MoveNode(1, 0); err != nil {
		t.Fatal(err)
	}
	k.RunFor(tRestart + time.Millisecond)
	if !e.Alive(0) {
		t.Fatal("VSA did not restart")
	}
	if err := e.Submit(0, uint64(1)); err != nil {
		t.Fatal(err)
	}
	k.Run()
	// Fresh incarnation: the counter restarted from zero.
	assertTraceEqual(t, e.TraceOf(0), oracle(0, []uint64{1}))
}

func TestUnsyncedJoinerCannotSaveVSA(t *testing.T) {
	k, e := newEmulator(t, 2)
	if err := e.AddNode(1, 0); err != nil {
		t.Fatal(err)
	}
	e.Boot()
	// A joiner arrives and the leader leaves before the checkpoint
	// transfer completes: the state is unrecoverable, so the VSA fails.
	if err := e.AddNode(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.MoveNode(1, 1); err != nil { // immediately, joiner not synced
		t.Fatal(err)
	}
	if e.Alive(0) {
		t.Fatal("VSA survived without any synced replica")
	}
	// The remaining node eventually restarts it fresh.
	k.RunFor(tRestart + time.Millisecond)
	if !e.Alive(0) {
		t.Fatal("VSA did not restart with the unsynced node present")
	}
}

func TestValidation(t *testing.T) {
	k, e := newEmulator(t, 2)
	if err := e.AddNode(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.AddNode(1, 1); err == nil {
		t.Error("duplicate AddNode accepted")
	}
	if err := e.AddNode(2, geo.RegionID(99)); err == nil {
		t.Error("AddNode outside tiling accepted")
	}
	if err := e.MoveNode(1, geo.RegionID(99)); err == nil {
		t.Error("MoveNode outside tiling accepted")
	}
	if err := e.MoveNode(42, 0); err == nil {
		t.Error("MoveNode of unknown node accepted")
	}
	if err := e.Submit(geo.RegionID(99), uint64(1)); err == nil {
		t.Error("Submit outside tiling accepted")
	}
	if e.Alive(geo.RegionID(99)) || e.Leader(geo.RegionID(99)) != NoNode {
		t.Error("queries outside tiling misbehave")
	}
	if len(e.TraceOf(geo.RegionID(99)).Outputs) != 0 {
		t.Error("TraceOf outside tiling non-empty")
	}
	e.FailNode(42) // unknown: no-op
	_ = k
}

// Property: under random churn that always leaves at least one synced
// node in the region, the emulated trace equals the oracle on the inputs
// submitted while the VSA was up.
func TestChurnPreservesTrace(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		k := sim.New(int64(trial))
		tiling := geo.MustGridTiling(2, 2)
		e := New(k, tiling, counterProgram{}, delta, tRestart)
		// Node 1 is the anchor that never leaves region 0; nodes 2-4 churn.
		for id := NodeID(1); id <= 4; id++ {
			if err := e.AddNode(id, 0); err != nil {
				t.Fatal(err)
			}
		}
		e.Boot()
		rng := rand.New(rand.NewSource(int64(trial) + 100))
		var inputs []uint64
		for step := 0; step < 40; step++ {
			switch rng.Intn(3) {
			case 0:
				v := uint64(rng.Intn(100) + 1)
				inputs = append(inputs, v)
				if err := e.Submit(0, v); err != nil {
					t.Fatal(err)
				}
			case 1:
				id := NodeID(rng.Intn(3) + 2)
				dest := geo.RegionID(rng.Intn(4))
				_ = e.MoveNode(id, dest) // may be dead; ignore
			case 2:
				k.RunFor(delta)
			}
			// Let every input fully commit before the next churn action,
			// keeping the "at least one synced replica" discipline simple.
			k.Run()
		}
		k.Run()
		want := oracle(0, inputs)
		got := outputs(e.TraceOf(0))
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d: trace %v != oracle %v", trial, got, want)
		}
	}
}

// Property: two runs with identical schedules produce identical traces.
func TestEmulatorDeterminism(t *testing.T) {
	run := func() string {
		k, e := newEmulator(t, 2)
		for id := NodeID(1); id <= 3; id++ {
			if err := e.AddNode(id, 0); err != nil {
				t.Fatal(err)
			}
		}
		e.Boot()
		for i := uint64(1); i <= 10; i++ {
			if err := e.Submit(0, i); err != nil {
				t.Fatal(err)
			}
			if i == 5 {
				if err := e.MoveNode(1, 1); err != nil {
					t.Fatal(err)
				}
			}
			k.Run()
		}
		return fmt.Sprint(outputs(e.TraceOf(0)))
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("runs diverged: %s vs %s", a, b)
	}
}
