// Package emul implements the Virtual Stationary Automata *emulation*
// algorithm that the paper imports from Dolev, Gilbert, Lahiani, Lynch &
// Nolte ("Timed virtual stationary automata for mobile networks", refs
// [7], [6]): each region's VSA is a deterministic timed machine whose
// state lives in the memories of the physical mobile nodes currently in
// the region, with one node (the leader) executing the machine and the
// rest mirroring it so the VSA survives node churn.
//
// The emulator here is leader-sequenced replicated execution:
//
//   - inputs for a region's VSA are broadcast locally and buffered by all
//     nodes in the region;
//   - the leader (lowest-id present node) assigns each input a sequence
//     number, executes the program, emits its outputs, and broadcasts a
//     commit record; followers apply committed inputs to their replicas
//     in order;
//   - a joining node asks for a state checkpoint and mirrors from there;
//   - when the leader leaves or fails, the next-lowest node promotes
//     itself, re-executes any buffered-but-uncommitted inputs in
//     deterministic order, and continues — no input is lost while the
//     region stays occupied;
//   - if the region empties, the VSA fails (its state is lost with the
//     nodes); when nodes return, it restarts from the program's initial
//     state after t_restart, exactly the §II-C.2 failure semantics that
//     internal/vsa exposes abstractly.
//
// The package demonstrates that the abstract layer the tracker runs on is
// implementable over unreliable mobile nodes, and measures the emulation
// lag that the paper's parameter e abstracts: tests drive the same
// program through this emulator and through a direct (oracle) execution
// and require identical output sequences, with per-output lag bounded by
// the configured e.
package emul

import (
	"fmt"
	"sort"

	"vinestalk/internal/geo"
	"vinestalk/internal/sim"
)

// NodeID identifies a physical mobile node.
type NodeID int

// String returns a compact textual form.
func (n NodeID) String() string { return fmt.Sprintf("n%d", int(n)) }

// Program is the deterministic machine emulated for a region. State is a
// byte encoding so replicas and checkpoints are plain copies; Step must be
// a pure function of (state, input).
type Program interface {
	// Init returns the initial state for region u.
	Init(u geo.RegionID) []byte
	// Step applies one input, returning the successor state and any
	// outputs the machine emits.
	Step(state []byte, input Input) (next []byte, outputs []Output)
}

// Input is one message delivered to a region's VSA.
type Input struct {
	// ID orders concurrent inputs deterministically (assigned by the
	// emulator at submission, unique per region).
	ID uint64
	// Msg is the payload.
	Msg any
}

// Output is a message the emulated VSA emits.
type Output struct {
	Msg any
}

// Trace records the observable behavior of one region's VSA: the outputs
// in emission order with their virtual emission times.
type Trace struct {
	Outputs []TracedOutput
}

// TracedOutput is one emitted output with its emission time.
type TracedOutput struct {
	Msg any
	At  sim.Time
}

// node is one physical node's replica state for the region it occupies.
type node struct {
	id     NodeID
	region geo.RegionID // NoRegion when outside/failed
	alive  bool

	// Replica of the occupied region's VSA.
	hasReplica bool
	state      []byte
	applied    uint64            // commits applied
	buffered   map[uint64]Input  // inputs heard but not yet committed
	committed  map[uint64]uint64 // input id -> commit seq (dedup)
}

// Emulator runs the leader-based emulation for every region of a tiling
// on the shared simulation kernel.
type Emulator struct {
	k        *sim.Kernel
	tiling   geo.Tiling
	prog     Program
	delta    sim.Time // local broadcast delay between nodes in a region
	tRestart sim.Time

	nodes   map[NodeID]*node
	regions []*regionState
	inputID uint64

	sink   func(u geo.RegionID, out Output)
	events func(ev RegionEvent)
}

// fireEvent invokes the region-events hook, if any.
func (e *Emulator) fireEvent(ev RegionEvent) {
	if e.events != nil {
		e.events(ev)
	}
}

type regionState struct {
	alive       bool
	leader      NodeID // NoNode when failed
	restart     *sim.Timer
	trace       Trace
	nextCommit  uint64
	pendingBoot bool
}

// NoNode is the sentinel leader value for a failed VSA.
const NoNode NodeID = -1

// RegionEventKind classifies the lifecycle transitions of one region's
// emulated VSA.
type RegionEventKind int

const (
	// LeaderChanged: the leader left or failed and a replica-holding
	// follower promoted itself; the machine continues without state loss.
	LeaderChanged RegionEventKind = iota
	// RegionFailed: no node (or no replica holder) remains — the VSA is
	// down and its state lost (§II-C.2 failure).
	RegionFailed
	// RegionRestarted: after t_restart with nodes present, the VSA is back
	// up from the program's initial state.
	RegionRestarted
)

// String returns a compact textual form.
func (k RegionEventKind) String() string {
	switch k {
	case LeaderChanged:
		return "leader-changed"
	case RegionFailed:
		return "region-failed"
	case RegionRestarted:
		return "region-restarted"
	}
	return fmt.Sprintf("RegionEventKind(%d)", int(k))
}

// RegionEvent reports one VSA lifecycle transition.
type RegionEvent struct {
	U      geo.RegionID
	Kind   RegionEventKind
	Leader NodeID // the new leader; NoNode on failure
}

// Option configures an Emulator.
type Option func(*Emulator)

// WithOutputSink registers a callback invoked for every output the leader
// commits, at commit time, in emission order. This is how a hosted program
// acts on the world: sends, timer arming and other external effects are
// returned from Step as Outputs (keeping Step pure) and executed by the
// sink exactly once — follower replicas re-execute Step but their outputs
// are discarded.
func WithOutputSink(fn func(u geo.RegionID, out Output)) Option {
	return func(e *Emulator) { e.sink = fn }
}

// WithRegionEvents registers a callback for VSA lifecycle transitions
// (leader handoff, failure, restart). Hosts use it to reconcile external
// state — dropping timers for a failed region, tracing handoffs.
func WithRegionEvents(fn func(ev RegionEvent)) Option {
	return func(e *Emulator) { e.events = fn }
}

// New creates an emulator for tiling t running prog at every region.
// delta is the intra-region broadcast delay (the dominant term of the
// emulation lag e) and tRestart the §II-C.2 restart delay.
func New(k *sim.Kernel, t geo.Tiling, prog Program, delta, tRestart sim.Time, opts ...Option) *Emulator {
	e := &Emulator{
		k:        k,
		tiling:   t,
		prog:     prog,
		delta:    delta,
		tRestart: tRestart,
		nodes:    make(map[NodeID]*node),
		regions:  make([]*regionState, t.NumRegions()),
	}
	for u := range e.regions {
		rs := &regionState{leader: NoNode}
		u := geo.RegionID(u)
		rs.restart = sim.NewTimer(k, func() { e.completeRestart(u) })
		e.regions[int(u)] = rs
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// AddNode places a new physical node at region u.
func (e *Emulator) AddNode(id NodeID, u geo.RegionID) error {
	if _, dup := e.nodes[id]; dup {
		return fmt.Errorf("emul: node %v already exists", id)
	}
	if !e.tiling.Contains(u) {
		return fmt.Errorf("emul: region %v outside tiling", u)
	}
	n := &node{id: id, alive: true, region: geo.NoRegion}
	e.nodes[id] = n
	e.enter(n, u)
	return nil
}

// MoveNode relocates a node; its old region may lose its VSA, its new
// region may gain a replica (after a checkpoint transfer).
func (e *Emulator) MoveNode(id NodeID, u geo.RegionID) error {
	n, ok := e.nodes[id]
	if !ok || !n.alive {
		return fmt.Errorf("emul: node %v not alive", id)
	}
	if !e.tiling.Contains(u) {
		return fmt.Errorf("emul: region %v outside tiling", u)
	}
	if n.region == u {
		return nil
	}
	e.leave(n)
	e.enter(n, u)
	return nil
}

// FailNode crash-stops a node (its replica is lost with it).
func (e *Emulator) FailNode(id NodeID) {
	n, ok := e.nodes[id]
	if !ok || !n.alive {
		return
	}
	e.leave(n)
	n.alive = false
}

// Alive reports whether region u's emulated VSA is up.
func (e *Emulator) Alive(u geo.RegionID) bool {
	return e.tiling.Contains(u) && e.regions[int(u)].alive
}

// Leader returns the node currently executing region u's VSA (NoNode if
// the VSA is down).
func (e *Emulator) Leader(u geo.RegionID) NodeID {
	if !e.tiling.Contains(u) {
		return NoNode
	}
	return e.regions[int(u)].leader
}

// Members returns the alive nodes currently in region u, ascending.
func (e *Emulator) Members(u geo.RegionID) []NodeID {
	if !e.tiling.Contains(u) {
		return nil
	}
	nodes := e.membersOf(u)
	out := make([]NodeID, len(nodes))
	for i, n := range nodes {
		out[i] = n.id
	}
	return out
}

// TraceOf returns the output trace of region u's VSA so far.
func (e *Emulator) TraceOf(u geo.RegionID) Trace {
	if !e.tiling.Contains(u) {
		return Trace{}
	}
	t := e.regions[int(u)].trace
	return Trace{Outputs: append([]TracedOutput(nil), t.Outputs...)}
}

// Submit delivers an input to region u's VSA: it is broadcast within the
// region (taking delta), buffered by every present node, and executed by
// the leader one more delta later (sequencing + commit broadcast) — a
// total emulation lag of 2·delta, which instantiates the paper's e.
// Inputs submitted while the VSA is down are lost, as in the abstract
// layer.
func (e *Emulator) Submit(u geo.RegionID, msg any) error {
	if !e.tiling.Contains(u) {
		return fmt.Errorf("emul: region %v outside tiling", u)
	}
	e.inputID++
	in := Input{ID: e.inputID, Msg: msg}
	e.k.Schedule(e.delta, func() {
		// The broadcast reaches whatever nodes are present now.
		for _, n := range e.membersOf(u) {
			if n.buffered == nil {
				n.buffered = make(map[uint64]Input)
			}
			n.buffered[in.ID] = in
		}
		// Commit only up to this input's sequence point: later inputs wait
		// for their own commit rounds, so each input's lag is exactly
		// 2·delta and cross-region interleaving matches a direct execution
		// when delta is 0. (Promote/restart sweep with no bound instead:
		// a recovering leader catches up on everything it has buffered.)
		e.k.Schedule(e.delta, func() { e.leaderExecuteUpTo(u, in.ID) })
	})
	return nil
}

// MaxLag returns the worst-case emulation output lag (the paper's e) for
// this configuration.
func (e *Emulator) MaxLag() sim.Time { return 2 * e.delta }

// --- internals ---

func (e *Emulator) membersOf(u geo.RegionID) []*node {
	var out []*node
	for _, n := range e.nodes {
		if n.alive && n.region == u {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func (e *Emulator) enter(n *node, u geo.RegionID) {
	n.region = u
	n.hasReplica = false
	n.buffered = make(map[uint64]Input)
	n.committed = make(map[uint64]uint64)
	rs := e.regions[int(u)]
	if rs.alive {
		// Joining an up VSA: fetch a checkpoint from the leader (one
		// broadcast round); until then the node mirrors nothing.
		e.scheduleCheckpoint(n, u)
		return
	}
	// First node into a dead region: start the restart countdown.
	if len(e.membersOf(u)) == 1 && !rs.restart.Armed() {
		rs.restart.SetAfter(e.tRestart)
	}
}

// scheduleCheckpoint transfers the leader's state to a joining node after
// one broadcast round. The state is read at *arrival* time (the leader
// streams updates until the joiner is synced), so commits during the
// transfer are not lost on the new replica.
func (e *Emulator) scheduleCheckpoint(n *node, u geo.RegionID) {
	e.k.Schedule(e.delta, func() {
		if !n.alive || n.region != u || n.hasReplica {
			return
		}
		rs := e.regions[int(u)]
		if !rs.alive || rs.leader == NoNode {
			return
		}
		leader := e.nodes[rs.leader]
		if leader == nil || !leader.alive || leader.region != u || !leader.hasReplica {
			return
		}
		n.state = append([]byte(nil), leader.state...)
		n.applied = leader.applied
		n.committed = make(map[uint64]uint64, len(leader.committed))
		for id, seq := range leader.committed {
			n.committed[id] = seq
		}
		// Share the leader's input buffer too (models retransmission of
		// broadcasts the joiner missed).
		for id, in := range leader.buffered {
			n.buffered[id] = in
		}
		n.hasReplica = true
	})
}

func (e *Emulator) leave(n *node) {
	u := n.region
	n.region = geo.NoRegion
	n.hasReplica = false
	if u == geo.NoRegion {
		return
	}
	rs := e.regions[int(u)]
	members := e.membersOf(u)
	if len(members) == 0 {
		// Region clientless: VSA fails, state lost.
		rs.restart.Clear()
		wasAlive := rs.alive
		rs.alive = false
		rs.leader = NoNode
		if wasAlive {
			e.fireEvent(RegionEvent{U: u, Kind: RegionFailed, Leader: NoNode})
		}
		return
	}
	if rs.alive && rs.leader == n.id {
		e.promote(u)
	}
}

// promote elects the lowest-id replica-holding node as leader; it
// re-executes any inputs it buffered that the old leader never committed.
func (e *Emulator) promote(u geo.RegionID) {
	rs := e.regions[int(u)]
	for _, cand := range e.membersOf(u) {
		if cand.hasReplica {
			rs.leader = cand.id
			e.fireEvent(RegionEvent{U: u, Kind: LeaderChanged, Leader: cand.id})
			e.leaderExecute(u)
			return
		}
	}
	// No node holds a replica (all mirrors were still checkpointing):
	// the VSA state is unrecoverable — treat as failure.
	rs.alive = false
	rs.leader = NoNode
	rs.restart.Clear()
	e.fireEvent(RegionEvent{U: u, Kind: RegionFailed, Leader: NoNode})
	if len(e.membersOf(u)) > 0 {
		rs.restart.SetAfter(e.tRestart)
	}
}

func (e *Emulator) completeRestart(u geo.RegionID) {
	rs := e.regions[int(u)]
	members := e.membersOf(u)
	if rs.alive || len(members) == 0 {
		return
	}
	rs.alive = true
	rs.leader = members[0].id
	rs.nextCommit = 0
	rs.trace = Trace{}
	for _, n := range members {
		n.state = e.prog.Init(u)
		n.applied = 0
		n.hasReplica = true
		n.committed = make(map[uint64]uint64)
		// Buffered inputs from before the restart belong to the dead
		// incarnation and are dropped.
		n.buffered = make(map[uint64]Input)
	}
	e.fireEvent(RegionEvent{U: u, Kind: RegionRestarted, Leader: rs.leader})
	e.leaderExecute(u)
}

// Boot marks every currently-occupied region's VSA alive immediately (the
// correctly-initialized system start of the paper's executions).
func (e *Emulator) Boot() {
	for u := range e.regions {
		rs := e.regions[u]
		members := e.membersOf(geo.RegionID(u))
		if len(members) == 0 || rs.alive {
			continue
		}
		rs.restart.Clear()
		rs.alive = true
		rs.leader = members[0].id
		for _, n := range members {
			n.state = e.prog.Init(geo.RegionID(u))
			n.applied = 0
			n.hasReplica = true
		}
	}
}

// leaderExecute lets region u's leader commit every input it has buffered
// but not yet executed, in input-id order, emitting outputs and updating
// all replicas (the commit broadcast is modeled as immediate application
// at the replicas; replica divergence windows are covered by the
// checkpoint join protocol).
func (e *Emulator) leaderExecute(u geo.RegionID) {
	e.leaderExecuteUpTo(u, ^uint64(0))
}

// leaderExecuteUpTo is leaderExecute bounded to inputs with id <= maxID —
// the per-input commit round of the normal (failure-free) path.
func (e *Emulator) leaderExecuteUpTo(u geo.RegionID, maxID uint64) {
	rs := e.regions[int(u)]
	if !rs.alive || rs.leader == NoNode {
		return
	}
	leader := e.nodes[rs.leader]
	if leader == nil || !leader.alive || leader.region != u || !leader.hasReplica {
		return
	}
	// Deterministic order: ascending input id.
	var todo []Input
	for id, in := range leader.buffered {
		if id > maxID {
			continue
		}
		if _, done := leader.committed[id]; !done {
			todo = append(todo, in)
		}
	}
	sort.Slice(todo, func(i, j int) bool { return todo[i].ID < todo[j].ID })
	for _, in := range todo {
		next, outs := e.prog.Step(leader.state, in)
		rs.nextCommit++
		seq := rs.nextCommit
		for _, out := range outs {
			rs.trace.Outputs = append(rs.trace.Outputs, TracedOutput{Msg: out.Msg, At: e.k.Now()})
			if e.sink != nil {
				e.sink(u, out)
			}
		}
		// Commit: every present replica applies the same input.
		for _, n := range e.membersOf(u) {
			if !n.hasReplica {
				continue
			}
			if n == leader {
				n.state = next
			} else {
				st, _ := e.prog.Step(n.state, in)
				n.state = st
			}
			n.applied = seq
			n.committed[in.ID] = seq
			delete(n.buffered, in.ID)
		}
	}
}
