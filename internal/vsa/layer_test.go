package vsa

import (
	"testing"
	"time"

	"vinestalk/internal/geo"
	"vinestalk/internal/sim"
)

// recClient records GPS updates and received messages.
type recClient struct {
	gps  []geo.RegionID
	msgs []any
}

func (c *recClient) GPSUpdate(u geo.RegionID) { c.gps = append(c.gps, u) }
func (c *recClient) Receive(msg any)          { c.msgs = append(c.msgs, msg) }

// recVSA records deliveries and resets.
type recVSA struct {
	msgs   []any
	resets int
}

func (v *recVSA) Receive(level int, msg any) { v.msgs = append(v.msgs, msg) }
func (v *recVSA) Reset()                     { v.resets++; v.msgs = nil }

func newTestLayer(t *testing.T, opts ...Option) (*sim.Kernel, *Layer) {
	t.Helper()
	k := sim.New(1)
	return k, NewLayer(k, geo.MustGridTiling(3, 3), opts...)
}

func TestAddClientDeliversGPSUpdate(t *testing.T) {
	_, l := newTestLayer(t)
	c := &recClient{}
	if err := l.AddClient(1, 4, c); err != nil {
		t.Fatal(err)
	}
	if len(c.gps) != 1 || c.gps[0] != 4 {
		t.Fatalf("gps = %v, want [r4]", c.gps)
	}
	if got := l.ClientRegion(1); got != 4 {
		t.Errorf("ClientRegion = %v, want r4", got)
	}
	if err := l.AddClient(1, 5, &recClient{}); err == nil {
		t.Error("duplicate AddClient succeeded")
	}
	if err := l.AddClient(2, geo.RegionID(99), &recClient{}); err == nil {
		t.Error("AddClient outside tiling succeeded")
	}
}

func TestMoveClientGPSUpdates(t *testing.T) {
	_, l := newTestLayer(t)
	c := &recClient{}
	if err := l.AddClient(1, 0, c); err != nil {
		t.Fatal(err)
	}
	if err := l.MoveClient(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.MoveClient(1, 1); err != nil { // same-region move is a no-op
		t.Fatal(err)
	}
	if len(c.gps) != 2 || c.gps[1] != 1 {
		t.Fatalf("gps = %v, want [r0 r1]", c.gps)
	}
	if err := l.MoveClient(99, 1); err == nil {
		t.Error("MoveClient of unknown client succeeded")
	}
}

func TestVSAAliveFollowsOccupancy(t *testing.T) {
	k, l := newTestLayer(t, WithTRestart(100*time.Millisecond))
	v := &recVSA{}
	l.RegisterVSA(0, v)
	c := &recClient{}
	if err := l.AddClient(1, 0, c); err != nil {
		t.Fatal(err)
	}
	l.StartAllAlive()
	if !l.Alive(0) {
		t.Fatal("occupied region's VSA not alive after StartAllAlive")
	}
	inc := l.Incarnation(0)

	// Client leaves: VSA fails immediately, state reset.
	if err := l.MoveClient(1, 1); err != nil {
		t.Fatal(err)
	}
	if l.Alive(0) {
		t.Fatal("clientless region's VSA still alive")
	}
	if v.resets != 1 {
		t.Errorf("resets = %d, want 1", v.resets)
	}
	if l.Incarnation(0) == inc {
		t.Error("incarnation unchanged across failure")
	}

	// Client returns: restart only after continuous t_restart occupancy.
	if err := l.MoveClient(1, 0); err != nil {
		t.Fatal(err)
	}
	k.RunFor(50 * time.Millisecond)
	if l.Alive(0) {
		t.Fatal("VSA restarted before t_restart")
	}
	k.RunFor(60 * time.Millisecond)
	if !l.Alive(0) {
		t.Fatal("VSA did not restart after t_restart")
	}
	if v.resets != 2 {
		t.Errorf("resets = %d, want 2 (reset on restart)", v.resets)
	}
}

func TestVSARestartAbandonedIfRegionEmpties(t *testing.T) {
	k, l := newTestLayer(t, WithTRestart(100*time.Millisecond))
	l.RegisterVSA(0, &recVSA{})
	c := &recClient{}
	if err := l.AddClient(1, 1, c); err != nil {
		t.Fatal(err)
	}
	l.StartAllAlive()
	if err := l.MoveClient(1, 0); err != nil { // start restart countdown for r0
		t.Fatal(err)
	}
	k.RunFor(50 * time.Millisecond)
	if err := l.MoveClient(1, 1); err != nil { // abandon it
		t.Fatal(err)
	}
	k.RunFor(200 * time.Millisecond)
	if l.Alive(0) {
		t.Fatal("VSA restarted although occupancy was interrupted")
	}
}

func TestFailAndRestartClient(t *testing.T) {
	_, l := newTestLayer(t)
	c := &recClient{}
	if err := l.AddClient(1, 0, c); err != nil {
		t.Fatal(err)
	}
	l.FailClient(1)
	if l.ClientAlive(1) {
		t.Fatal("failed client reports alive")
	}
	if got := l.ClientRegion(1); got != geo.NoRegion {
		t.Errorf("failed client region = %v, want NoRegion", got)
	}
	if l.DeliverToClient(1, "msg") {
		t.Error("delivery to failed client succeeded")
	}
	if err := l.MoveClient(1, 2); err == nil {
		t.Error("MoveClient on failed client succeeded")
	}
	if err := l.RestartClient(1, 2); err != nil {
		t.Fatal(err)
	}
	if got := l.ClientRegion(1); got != 2 {
		t.Errorf("restarted client region = %v, want r2", got)
	}
	if len(c.gps) != 2 || c.gps[1] != 2 {
		t.Errorf("gps = %v, want restart GPSUpdate", c.gps)
	}
	if err := l.RestartClient(1, 2); err == nil {
		t.Error("RestartClient on alive client succeeded")
	}
	if err := l.RestartClient(42, 2); err == nil {
		t.Error("RestartClient on unknown client succeeded")
	}
	l.FailClient(42) // unknown: no-op
}

func TestClientsInSorted(t *testing.T) {
	_, l := newTestLayer(t)
	for _, id := range []ClientID{5, 1, 3} {
		if err := l.AddClient(id, 4, &recClient{}); err != nil {
			t.Fatal(err)
		}
	}
	got := l.ClientsIn(4)
	want := []ClientID{1, 3, 5}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("ClientsIn = %v, want %v", got, want)
	}
	if l.ClientsIn(geo.NoRegion) != nil {
		t.Error("ClientsIn(NoRegion) should be nil")
	}
}

func TestDeliverToVSA(t *testing.T) {
	_, l := newTestLayer(t)
	v := &recVSA{}
	l.RegisterVSA(0, v)
	if l.DeliverToVSA(0, 1, "msg") {
		t.Fatal("delivery to failed VSA succeeded")
	}
	if err := l.AddClient(1, 0, &recClient{}); err != nil {
		t.Fatal(err)
	}
	l.StartAllAlive()
	if !l.DeliverToVSA(0, 1, "msg") {
		t.Fatal("delivery to alive VSA failed")
	}
	if len(v.msgs) != 1 || v.msgs[0] != "msg" {
		t.Errorf("vsa msgs = %v", v.msgs)
	}
	if l.DeliverToVSA(geo.RegionID(99), 0, "x") {
		t.Error("delivery outside tiling succeeded")
	}
	// Region 1 has no handler registered and no clients.
	if l.DeliverToVSA(1, 0, "x") {
		t.Error("delivery to unregistered dead VSA succeeded")
	}
}

func TestAlwaysAliveLayer(t *testing.T) {
	_, l := newTestLayer(t, WithAlwaysAlive())
	v := &recVSA{}
	l.RegisterVSA(8, v)
	if !l.Alive(8) {
		t.Fatal("VSA not alive under WithAlwaysAlive")
	}
	// Occupancy changes must not fail it.
	if err := l.AddClient(1, 8, &recClient{}); err != nil {
		t.Fatal(err)
	}
	if err := l.MoveClient(1, 0); err != nil {
		t.Fatal(err)
	}
	if !l.Alive(8) {
		t.Fatal("always-alive VSA failed on emptying")
	}
	if v.resets != 0 {
		t.Errorf("resets = %d, want 0", v.resets)
	}
}

func TestClientRegionUnknown(t *testing.T) {
	_, l := newTestLayer(t)
	if got := l.ClientRegion(7); got != geo.NoRegion {
		t.Errorf("ClientRegion(unknown) = %v, want NoRegion", got)
	}
	if l.ClientAlive(7) {
		t.Error("unknown client reports alive")
	}
	if l.Alive(geo.NoRegion) {
		t.Error("Alive(NoRegion) should be false")
	}
}

// The aliveness epoch must move on exactly the transitions that change the
// alive set — VSA failure, t_restart completion, and StartAllAlive — and on
// nothing else, because routing layers treat "same epoch" as "same alive
// set" when serving cached failover hops.
func TestAliveEpochBumpsOnEveryAliveSetChange(t *testing.T) {
	k, l := newTestLayer(t, WithTRestart(10*time.Millisecond))
	// Epoch 0 is reserved so zero-valued cache entries never look fresh.
	if got := l.AliveEpoch(); got != 1 {
		t.Fatalf("initial AliveEpoch = %d, want 1", got)
	}

	// Client placement alone does not change the alive set (the VSA starts
	// only after t_restart or StartAllAlive).
	if err := l.AddClient(1, 4, &recClient{}); err != nil {
		t.Fatal(err)
	}
	if got := l.AliveEpoch(); got != 1 {
		t.Fatalf("AliveEpoch after AddClient = %d, want 1", got)
	}
	l.StartAllAlive()
	afterBoot := l.AliveEpoch()
	if afterBoot <= 1 {
		t.Fatalf("AliveEpoch after StartAllAlive = %d, want > 1", afterBoot)
	}

	// Moving a client within the alive set (here: emptying r4 kills its
	// VSA) bumps; the later restart bumps again.
	if err := l.MoveClient(1, 5); err != nil {
		t.Fatal(err)
	}
	afterFail := l.AliveEpoch()
	if afterFail <= afterBoot {
		t.Fatalf("AliveEpoch after VSA failure = %d, want > %d", afterFail, afterBoot)
	}
	// r5 was clientless before the move, so it has a pending restart; let it
	// complete.
	k.RunFor(20 * time.Millisecond)
	afterRestart := l.AliveEpoch()
	if afterRestart <= afterFail {
		t.Fatalf("AliveEpoch after restart = %d, want > %d", afterRestart, afterFail)
	}

	// Quiescence: running further without lifecycle events must not move
	// the epoch.
	k.RunFor(time.Second)
	if got := l.AliveEpoch(); got != afterRestart {
		t.Fatalf("AliveEpoch moved to %d during quiescence, want %d", got, afterRestart)
	}
}
