package vsa

import (
	"vinestalk/internal/geo"
	"vinestalk/internal/sim"
)

// This file defines the ports-and-adapters boundary between a VSA-hosted
// algorithm and the substrate that executes it.
//
// An Automaton is a deterministic machine partitioned per region: all of
// its state for region u is explicit and serializable (EncodeRegion /
// DecodeRegion), every state change is driven by an input the host hands
// it (Deliver, TimerFire), and every externally-visible action it takes is
// routed back through its Host (Emit, SetTimer, ClearTimer). The automaton
// holds no timers, network handles, or scheduled closures of its own —
// which is what makes one automaton runnable on different substrates:
//
//   - an oracle host executes each region's machine directly and
//     atomically (the abstract layer this package implements), and
//   - a replicated-emulation host (internal/emul) runs each region's
//     machine on the mobile nodes currently in the region, surviving
//     leader handoff and node churn by replaying the serialized state.
//
// Determinism contract: a region's state after processing a sequence of
// inputs must be a pure function of (initial state, input sequence, input
// times). Encode/decode must round-trip exactly — a replica that decodes a
// checkpoint and applies the same inputs must encode byte-identical state.

// TimerID names one logical timer of an automaton region. The automaton
// assigns ids (packing whatever coordinates it needs — level, object,
// timer role); the host treats them as opaque. Within one region, an id
// names at most one armed deadline at a time: re-setting an id supersedes
// its previous deadline, exactly like assigning a TIOA timer variable.
type TimerID uint64

// Host is the substrate-side port an Automaton runs against.
type Host interface {
	// Now returns the current virtual time.
	Now() sim.Time

	// SetTimer arms (or re-arms) timer id of region u to fire at absolute
	// virtual time at. The host will eventually call the automaton's
	// TimerFire(u, id, at); the wakeup is advisory — the automaton
	// re-validates the deadline against its own recorded state, so a stale
	// wakeup (superseded deadline, state lost to a failure) is a no-op.
	SetTimer(u geo.RegionID, id TimerID, at sim.Time)

	// ClearTimer disarms timer id of region u (deadline ← ∞).
	ClearTimer(u geo.RegionID, id TimerID)

	// Emit hands the host an effect the region's machine produced: a
	// protocol message to transmit, an output, an accounting note. The
	// host decides when the effect takes place — an oracle host executes
	// it synchronously, a replicated host defers it to the leader's commit
	// point (follower replicas produce the same effects, which are
	// discarded). Effects must therefore be self-contained values.
	Emit(u geo.RegionID, effect any)
}

// Automaton is the algorithm-side port: a deterministic, serializable
// per-region machine. Implementations must confine all mutable state to
// what EncodeRegion captures, and perform all external actions through
// the Host they were built with.
type Automaton interface {
	// Deliver hands the region's machine one message addressed to the
	// subautomaton at the given hierarchy level.
	Deliver(u geo.RegionID, level int, msg any)

	// TimerFire reports that timer id, armed for deadline at, has come
	// due. The automaton must treat the call as advisory: if its recorded
	// deadline for id is not exactly at (the timer was re-armed, cleared,
	// or the state was lost and rebuilt), the fire is ignored.
	TimerFire(u geo.RegionID, id TimerID, at sim.Time)

	// ResetRegion returns region u's machine to its initial state (VSA
	// failure or restart, §II-C.2), clearing any armed timers through the
	// host.
	ResetRegion(u geo.RegionID)

	// EncodeRegion serializes region u's complete machine state. Two
	// regions that processed the same input sequence from the same state
	// must encode byte-identical values.
	EncodeRegion(u geo.RegionID) []byte

	// DecodeRegion replaces region u's machine state with a previously
	// encoded value. It must not touch host timers: the recorded deadlines
	// inside the state are authoritative, and host wakeups self-guard.
	DecodeRegion(u geo.RegionID, state []byte) error
}
