// Package vsa implements the Virtual Stationary Automata layer of §II-C:
// mobile clients C_p that receive GPSupdate inputs, and one virtual
// stationary automaton V_u per region u, which is a union of per-level
// subautomata V_{u,l} (one per cluster the region heads).
//
// Failure semantics follow §II-C.2 exactly: a clientless region's VSA is
// failed (its state is lost and in-flight messages to it are dropped); a
// VSA only fails when clients fail or leave its region; and a failed VSA
// restarts from its initial state once its region has been continuously
// occupied for t_restart.
//
// Substitution note: the paper emulates each VSA with the physical mobile
// nodes in its region (refs [7], [6]); this package implements the
// *abstract* layer those references prove implementable — the observable
// interface (hosting, timing lag e, failure/restart rules) is the same, and
// it is the interface the VINESTALK analysis is carried out against.
package vsa

import (
	"fmt"
	"sort"

	"vinestalk/internal/geo"
	"vinestalk/internal/sim"
)

// ClientID identifies a mobile client (a physical node).
type ClientID int

// String returns a compact textual form of the identifier.
func (c ClientID) String() string { return fmt.Sprintf("p%d", int(c)) }

// ClientHandler is the algorithm running at a client. The layer invokes it
// for GPS region-change notifications and message deliveries.
type ClientHandler interface {
	// GPSUpdate reports the client's current region; it fires when the
	// client enters the system, changes region, or restarts.
	GPSUpdate(u geo.RegionID)
	// Receive delivers a message broadcast to the client.
	Receive(msg any)
}

// VSAHandler is the algorithm state hosted by one region's VSA (the union
// of its per-level Tracker subautomata, for VINESTALK).
type VSAHandler interface {
	// Receive delivers a message addressed to the subautomaton at the given
	// hierarchy level.
	Receive(level int, msg any)
	// Reset reinitializes all subautomata state; called when the VSA fails
	// or restarts.
	Reset()
}

type client struct {
	id      ClientID
	region  geo.RegionID // NoRegion when failed or outside
	alive   bool
	handler ClientHandler
}

type region struct {
	alive       bool
	incarnation uint64
	handler     VSAHandler
	occupants   map[ClientID]struct{}
	restart     *sim.Timer
}

// Layer is the VSA layer: the client population, per-region VSA lifecycle,
// and delivery entry points used by the communication services.
type Layer struct {
	k        *sim.Kernel
	tiling   geo.Tiling
	clients  map[ClientID]*client
	regions  []*region
	tRestart sim.Time
	always   bool // every VSA permanently alive (paper's §IV-C assumption)
	// epoch counts alive-set changes: it is bumped every time any region's
	// VSA fails or (re)starts. Routing layers key caches of "next hop over
	// the alive subgraph" on it — within one epoch the alive set is frozen,
	// so any such cache entry stays valid exactly until the epoch moves.
	// It starts at 1 so a zero-valued cache entry can never look fresh.
	epoch uint64
}

// AliveEpoch returns the current aliveness epoch: a counter bumped on every
// VSA failure and restart. Two calls returning the same value bracket a
// window in which no VSA's liveness changed.
func (l *Layer) AliveEpoch() uint64 { return l.epoch }

// Option configures the layer.
type Option interface{ apply(*Layer) }

type tRestartOption sim.Time

func (o tRestartOption) apply(l *Layer) { l.tRestart = sim.Time(o) }

// WithTRestart sets the t_restart delay before a failed VSA restarts.
func WithTRestart(d sim.Time) Option { return tRestartOption(d) }

type alwaysAliveOption struct{}

func (alwaysAliveOption) apply(l *Layer) { l.always = true }

// WithAlwaysAlive pins every VSA alive regardless of occupancy. This is the
// assumption under which the paper proves correctness ("assuming each VSA
// is always alive", §III-B); failure experiments drop the option.
func WithAlwaysAlive() Option { return alwaysAliveOption{} }

// NewLayer creates a layer over tiling t with no clients; all VSAs start
// failed (or alive under WithAlwaysAlive) until clients arrive.
func NewLayer(k *sim.Kernel, t geo.Tiling, opts ...Option) *Layer {
	l := &Layer{
		k:        k,
		tiling:   t,
		clients:  make(map[ClientID]*client),
		regions:  make([]*region, t.NumRegions()),
		tRestart: 0,
		epoch:    1,
	}
	for _, o := range opts {
		o.apply(l)
	}
	for u := range l.regions {
		r := &region{occupants: make(map[ClientID]struct{})}
		if l.always {
			r.alive = true
		}
		u := geo.RegionID(u)
		r.restart = sim.NewTimer(k, func() { l.completeRestart(u) })
		l.regions[int(u)] = r
	}
	return l
}

// Kernel returns the simulation kernel the layer runs on.
func (l *Layer) Kernel() *sim.Kernel { return l.k }

// Tiling returns the region tiling.
func (l *Layer) Tiling() geo.Tiling { return l.tiling }

// RegisterVSA installs the algorithm hosted at region u's VSA. It must be
// called once per region before messages flow.
func (l *Layer) RegisterVSA(u geo.RegionID, h VSAHandler) {
	l.regions[int(u)].handler = h
}

// AddClient places a new, alive client at region u. The client immediately
// receives a GPSUpdate for u.
func (l *Layer) AddClient(id ClientID, u geo.RegionID, h ClientHandler) error {
	if _, dup := l.clients[id]; dup {
		return fmt.Errorf("vsa: client %v already exists", id)
	}
	if !l.tiling.Contains(u) {
		return fmt.Errorf("vsa: region %v outside tiling", u)
	}
	c := &client{id: id, region: u, alive: true, handler: h}
	l.clients[id] = c
	l.enterRegion(id, u)
	h.GPSUpdate(u)
	return nil
}

// MoveClient relocates an alive client to region u; the GPS service
// delivers the new region immediately (it is an oracle).
func (l *Layer) MoveClient(id ClientID, u geo.RegionID) error {
	c, ok := l.clients[id]
	if !ok || !c.alive {
		return fmt.Errorf("vsa: client %v not alive", id)
	}
	if !l.tiling.Contains(u) {
		return fmt.Errorf("vsa: region %v outside tiling", u)
	}
	if c.region == u {
		return nil
	}
	l.leaveRegion(id, c.region)
	c.region = u
	l.enterRegion(id, u)
	c.handler.GPSUpdate(u)
	return nil
}

// FailClient crash-stops a client. Its region may lose its VSA as a result.
func (l *Layer) FailClient(id ClientID) {
	c, ok := l.clients[id]
	if !ok || !c.alive {
		return
	}
	c.alive = false
	l.leaveRegion(id, c.region)
	c.region = geo.NoRegion
}

// RestartClient restarts a failed client at region u, from its initial
// state (the handler receives a fresh GPSUpdate).
func (l *Layer) RestartClient(id ClientID, u geo.RegionID) error {
	c, ok := l.clients[id]
	if !ok {
		return fmt.Errorf("vsa: unknown client %v", id)
	}
	if c.alive {
		return fmt.Errorf("vsa: client %v already alive", id)
	}
	if !l.tiling.Contains(u) {
		return fmt.Errorf("vsa: region %v outside tiling", u)
	}
	c.alive = true
	c.region = u
	l.enterRegion(id, u)
	c.handler.GPSUpdate(u)
	return nil
}

// ClientRegion returns the client's current region, NoRegion if failed.
func (l *Layer) ClientRegion(id ClientID) geo.RegionID {
	c, ok := l.clients[id]
	if !ok || !c.alive {
		return geo.NoRegion
	}
	return c.region
}

// ClientAlive reports whether the client is alive.
func (l *Layer) ClientAlive(id ClientID) bool {
	c, ok := l.clients[id]
	return ok && c.alive
}

// ClientsIn returns the alive clients currently in region u, ascending.
func (l *Layer) ClientsIn(u geo.RegionID) []ClientID {
	if !l.tiling.Contains(u) {
		return nil
	}
	r := l.regions[int(u)]
	out := make([]ClientID, 0, len(r.occupants))
	for id := range r.occupants {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Alive reports whether region u's VSA is alive.
func (l *Layer) Alive(u geo.RegionID) bool {
	return l.tiling.Contains(u) && l.regions[int(u)].alive
}

// Incarnation returns a counter bumped on every failure and restart of
// region u's VSA. Messages captured under an old incarnation must be
// dropped (the VSA that held them is gone).
func (l *Layer) Incarnation(u geo.RegionID) uint64 {
	return l.regions[int(u)].incarnation
}

// DeliverToVSA hands msg to the subautomaton at (u, level). It reports
// whether the VSA was alive to receive it.
func (l *Layer) DeliverToVSA(u geo.RegionID, level int, msg any) bool {
	if !l.tiling.Contains(u) {
		return false
	}
	r := l.regions[int(u)]
	if !r.alive || r.handler == nil {
		return false
	}
	r.handler.Receive(level, msg)
	return true
}

// DeliverToClient hands msg to a client; delivery fails silently if the
// client is not alive (stopping failures lose messages).
func (l *Layer) DeliverToClient(id ClientID, msg any) bool {
	c, ok := l.clients[id]
	if !ok || !c.alive {
		return false
	}
	c.handler.Receive(msg)
	return true
}

// enterRegion and leaveRegion maintain occupancy and drive the §II-C.2 VSA
// lifecycle.
func (l *Layer) enterRegion(id ClientID, u geo.RegionID) {
	r := l.regions[int(u)]
	r.occupants[id] = struct{}{}
	if l.always || r.alive {
		return
	}
	if len(r.occupants) == 1 && !r.restart.Armed() {
		r.restart.SetAfter(l.tRestart)
	}
}

func (l *Layer) leaveRegion(id ClientID, u geo.RegionID) {
	if u == geo.NoRegion {
		return
	}
	r := l.regions[int(u)]
	delete(r.occupants, id)
	if l.always || len(r.occupants) > 0 {
		return
	}
	// Region is clientless: the VSA fails now (or its pending restart is
	// abandoned).
	r.restart.Clear()
	if r.alive {
		r.alive = false
		r.incarnation++
		l.epoch++
		if r.handler != nil {
			r.handler.Reset()
		}
	}
}

func (l *Layer) completeRestart(u geo.RegionID) {
	r := l.regions[int(u)]
	if r.alive || len(r.occupants) == 0 {
		return
	}
	r.alive = true
	r.incarnation++
	l.epoch++
	if r.handler != nil {
		r.handler.Reset()
	}
}

// StartAllAlive marks every currently-occupied region's VSA alive without
// waiting t_restart: the system boots in a correctly-initialized state, as
// the paper's executions assume. Call it once after placing the initial
// client population.
func (l *Layer) StartAllAlive() {
	for _, r := range l.regions {
		if len(r.occupants) > 0 && !r.alive {
			r.restart.Clear()
			r.alive = true
			l.epoch++
			// No handler Reset: handlers are freshly constructed at boot
			// and already in their initial state.
		}
	}
}
