package vinestalk_test

import (
	"fmt"
	"log"

	"vinestalk"
)

// Example builds a small tracked sensor field, relocates the evader, and
// locates it with a find — the complete lifecycle of the tracking service.
func Example() {
	svc, err := vinestalk.New(vinestalk.Config{
		Width:           8,
		AlwaysAliveVSAs: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := svc.Settle(); err != nil {
		log.Fatal(err)
	}

	// The evader walks two regions; each Settle completes the grow/shrink
	// updates to the tracking path.
	for _, to := range []vinestalk.RegionID{
		svc.Tiling().RegionAt(1, 1),
		svc.Tiling().RegionAt(2, 2),
	} {
		if err := svc.MoveEvader(to); err != nil {
			log.Fatal(err)
		}
		if err := svc.Settle(); err != nil {
			log.Fatal(err)
		}
	}

	// A find from the far corner searches up the hierarchy, traces the
	// path down, and produces a found output at the evader's region.
	id, err := svc.Find(svc.Tiling().RegionAt(7, 7))
	if err != nil {
		log.Fatal(err)
	}
	if err := svc.Settle(); err != nil {
		log.Fatal(err)
	}
	for _, r := range svc.Founds() {
		if r.ID == id {
			fmt.Println("found at evader's region:", r.FoundAt == svc.Evader().Region())
		}
	}
	fmt.Println("state matches atomic spec:", svc.CheckTheorem48() == nil)
	// Output:
	// found at evader's region: true
	// state matches atomic spec: true
}

// ExampleService_AddObject tracks a second mobile object with its own
// independent structure (§VII multiple objects).
func ExampleService_AddObject() {
	svc, err := vinestalk.New(vinestalk.Config{Width: 8, AlwaysAliveVSAs: true})
	if err != nil {
		log.Fatal(err)
	}
	second, err := svc.AddObject(1, svc.Tiling().RegionAt(7, 7))
	if err != nil {
		log.Fatal(err)
	}
	if err := svc.Settle(); err != nil {
		log.Fatal(err)
	}

	id, err := svc.FindObject(svc.Tiling().RegionAt(0, 7), 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := svc.Settle(); err != nil {
		log.Fatal(err)
	}
	for _, r := range svc.Founds() {
		if r.ID == id {
			fmt.Println("second object found:", r.FoundAt == second.Region())
		}
	}
	// Output:
	// second object found: true
}
