// Package vinestalk is a faithful, executable reproduction of
// "A Virtual Node-Based Tracking Algorithm for Mobile Networks"
// (Nolte & Lynch, ICDCS 2007): the VINESTALK mobile-object tracking
// algorithm on the Virtual Stationary Automata (VSA) layer.
//
// The package is a facade over the internal implementation:
//
//   - a deterministic discrete-event simulation of the VSA layer (mobile
//     clients, per-region virtual automata, V-bcast/geocast/C-gcast
//     communication with the paper's delay schedule);
//   - the Tracker automaton of the paper's Fig. 2 (grow/shrink path
//     maintenance with lateral links and secondary pointers, search/trace
//     finds), one process per cluster of a base-r grid hierarchy;
//   - the correctness machinery of §IV-C (Fig. 3 lookAhead, the atomic
//     specification, consistency predicates) as runtime checkers;
//   - the §VII extensions (heartbeat healing after VSA failures).
//
// # Quickstart
//
//	svc, err := vinestalk.New(vinestalk.Config{Width: 16, AlwaysAliveVSAs: true})
//	if err != nil { ... }
//	_ = svc.Settle()                     // build the initial tracking path
//	_ = svc.MoveEvader(svc.Evader().Region() + 1)
//	_ = svc.Settle()                     // path updated (O(log D) work)
//	id, _ := svc.Find(vinestalk.RegionID(0))
//	_ = svc.Settle()                     // found at the evader's region
//	fmt.Println(svc.FindDone(id), svc.Founds())
//
// Deeper control (mobility models, failure injection, raw tracker state,
// experiment drivers) is available through the Service accessors; see the
// repository's examples/ directory and DESIGN.md.
package vinestalk

import (
	"vinestalk/internal/core"
	"vinestalk/internal/geo"
	"vinestalk/internal/sim"
	"vinestalk/internal/tracker"
)

type (
	// Config describes a tracking-service deployment: grid size,
	// hierarchy base, delays δ and e, failure semantics, and extensions.
	Config = core.Config
	// Service is an assembled tracking service over the VSA layer.
	Service = core.Service
	// RegionID identifies a region of the deployment space.
	RegionID = geo.RegionID
	// FindID identifies a find operation.
	FindID = tracker.FindID
	// ObjectID identifies a tracked mobile object (§VII multiple objects).
	ObjectID = tracker.ObjectID
	// FindResult reports a completed find (origin, region found at).
	FindResult = tracker.FindResult
	// Schedule holds the grow/shrink timer functions g, s of §IV-B.
	Schedule = tracker.Schedule
	// EmulationConfig hosts the Tracker on the replicated mobile-node
	// emulation substrate (§II-C) instead of the oracle VSA layer.
	EmulationConfig = core.EmulationConfig
	// Time is virtual simulation time.
	Time = sim.Time
)

// NoRegion is the sentinel for "no region".
const NoRegion = geo.NoRegion

// New assembles and boots a tracking service: tiling, hierarchy, VSA
// layer, communication services, tracker processes, one sensor client per
// region, and the evader at its start region.
func New(cfg Config) (*Service, error) { return core.New(cfg) }
